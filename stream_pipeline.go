package pfpl

// The streaming frame pipeline. Frames are independent compression units
// (each a complete PFPL container), so they parallelize exactly like the
// CPU executor's chunks: a bounded pool of workers compresses frames
// concurrently while a chained token (cpucomp.Chain) serializes emission
// into submission order. The emitted byte stream is bit-identical to
// serial emission for every worker count, which internal/conformance pins
// with golden SHA-256 vectors over streamed output.
//
// Error determinism: an error is only recorded at a frame's emission turn,
// and turns are taken strictly in frame order, so the first failing frame
// (compress or write) in *frame order* wins no matter how workers are
// scheduled. Once an error is recorded, later frames drain through the
// chain without compressing or writing, and Close reports the error.

import (
	"context"
	"io"
	"strconv"
	"sync"

	"pfpl/internal/core"
	"pfpl/internal/cpucomp"
	"pfpl/internal/obs"
)

// streamWorkers resolves a requested concurrency: <= 0 means one worker
// per logical CPU.
func streamWorkers(requested int) int {
	return cpucomp.Workers(requested)
}

// frameJob is one frame handed to the worker pool, with its emission-order
// token pair from the chain.
type frameJob[T any] struct {
	vals []T
	idx  int32 // frame index, the span unit label
	turn <-chan struct{}
	done chan struct{}
}

// framePipe is the bounded, order-preserving compression pipeline behind
// Writer32/64.
type framePipe[T any] struct {
	dst   io.Writer
	enc   func([]T) ([]byte, error)
	ctx   context.Context
	rec   *obs.Recorder
	elem  int64 // bytes per value, for frame byte accounting
	jobs  chan frameJob[T]
	wg    sync.WaitGroup
	chain *cpucomp.Chain
	// pool recycles frame value buffers: a worker returns a frame's buffer
	// after compressing it, and the writer's next fill takes it back.
	pool   sync.Pool
	limit  int
	frames int32 // next frame index; touched only by submit's caller
	// tally enables per-frame chunk-outcome accounting (compressed vs raw
	// fallback) into the recorder's aggregates. Only set when the caller
	// supplied a Trace: the tally re-parses each frame's chunk table, which
	// the untraced fast path must not pay for.
	tally bool

	// Footer-index state. Emission turns are serialized by the chain, so
	// recs and off are only ever touched while a worker holds its turn
	// (happens-before through the chain's channels); close reads them after
	// every worker has exited.
	index bool
	recs  []core.FrameRecord
	off   int64 // stream bytes emitted so far

	mu  sync.Mutex
	err error
}

func newFramePipe[T any](dst io.Writer, enc func([]T) ([]byte, error), ctx context.Context, rec *obs.Recorder, elem int64, limit, workers int, index, tally bool) *framePipe[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &framePipe[T]{
		dst:   dst,
		enc:   enc,
		ctx:   ctx,
		rec:   rec,
		elem:  elem,
		chain: cpucomp.NewChain(),
		index: index,
		tally: tally,
		// The job queue bounds frames in flight: at most `workers` queued
		// plus `workers` being compressed, so memory stays proportional to
		// the concurrency, not the stream length.
		jobs:  make(chan frameJob[T], workers),
		limit: limit,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// stalled reports the pipeline's terminal condition: a recorded error, or a
// canceled context. Workers use it to stop compressing mid-stream; the
// context error itself is only *recorded* at an emission turn (see worker),
// keeping the reported error deterministic in frame order.
func (p *framePipe[T]) stalled() bool {
	return p.firstErr() != nil || p.ctx.Err() != nil
}

func (p *framePipe[T]) worker(id int) {
	defer p.wg.Done()
	track := p.rec.Track("stream-w" + strconv.Itoa(id))
	for j := range p.jobs {
		var comp []byte
		var err error
		t := p.rec.Now()
		if !p.stalled() { // after a failure or cancel, drain without compressing
			comp, err = p.enc(j.vals)
		}
		if err == nil && comp != nil {
			t = p.rec.StageSpanOutcome(obs.StageEncode, track, j.idx, t,
				obs.OutcomeCompressed, int64(len(j.vals))*p.elem, int64(len(comp))+framePrefix)
			if p.tally {
				if chunks, raw, _, terr := ChunkOutcomes(comp); terr == nil {
					p.rec.ChunksDone(int64(chunks), int64(raw))
				}
			}
		}
		// The index record is assembled before the emission turn so the
		// SHA-256 runs in parallel across workers; only the append happens
		// under the turn.
		var rec core.FrameRecord
		if p.index && err == nil && comp != nil {
			rec, err = frameRecordFor(comp)
		}
		p.pool.Put(j.vals[:0])
		<-j.turn
		t = p.rec.StageSpan(obs.StageCarryWait, track, j.idx, t)
		if p.firstErr() == nil {
			switch {
			case p.ctx.Err() != nil:
				// Cancellation wins over this frame's result: the frame is
				// suppressed whether or not it compressed cleanly, so the
				// stream ends at a frame boundary.
				p.fail(p.ctx.Err())
			case err != nil:
				p.fail(err)
			case comp != nil:
				if werr := writeFrame(p.dst, comp); werr != nil {
					p.fail(werr)
				} else {
					if p.index {
						rec.Offset = p.off
						p.recs = append(p.recs, rec)
					}
					p.off += framePrefix + int64(len(comp))
					p.rec.StageSpan(obs.StageEmit, track, j.idx, t)
				}
			}
		}
		close(j.done)
	}
}

// frameRecordFor builds a frame's footer-index entry from its compressed
// bytes: the container header supplies the chunk and value counts, and the
// digest content-addresses the frame for caches and integrity checks.
func frameRecordFor(comp []byte) (core.FrameRecord, error) {
	h, err := core.ParseHeader(comp)
	if err != nil {
		return core.FrameRecord{}, err
	}
	return core.FrameRecord{
		Length: int64(len(comp)),
		Chunks: h.NumChunks,
		Values: int64(h.Len()),
		Digest: core.FrameDigest(comp),
	}, nil
}

// writeIndex emits the footer index block and fixed trailer after the last
// frame. Only called once the workers have drained, so recs and off are
// settled.
func (p *framePipe[T]) writeIndex() error {
	block := core.AppendIndex(nil, p.recs)
	trailer := core.AppendIndexTrailer(nil, p.off, block)
	if _, err := p.dst.Write(block); err != nil {
		return err
	}
	_, err := p.dst.Write(trailer)
	return err
}

// submit hands one complete frame to the pool, blocking while the pipeline
// is full. Must be called from the single writer goroutine: submission
// order defines emission order via the chain.
func (p *framePipe[T]) submit(vals []T) {
	turn, done := p.chain.Link()
	p.jobs <- frameJob[T]{vals: vals, idx: p.frames, turn: turn, done: done}
	p.frames++
}

// close stops the workers and returns the pipeline's first error.
func (p *framePipe[T]) close() error {
	close(p.jobs)
	p.wg.Wait()
	return p.firstErr()
}

func (p *framePipe[T]) firstErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *framePipe[T]) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// getBuf returns an empty frame buffer with the frame capacity, recycled
// when the pool has one.
func (p *framePipe[T]) getBuf() []T {
	if v := p.pool.Get(); v != nil {
		return v.([]T)
	}
	return make([]T, 0, p.limit)
}

// streamWriter is the shared implementation of Writer32/64: it slices the
// caller's values into frames of exactly `limit` values (identical
// partitioning to the serial writer, so the frame contents never depend on
// write-call boundaries) and feeds them to the pipe.
type streamWriter[T any] struct {
	pipe   *framePipe[T]
	buf    []T
	limit  int
	closed bool
}

func (w *streamWriter[T]) init(dst io.Writer, enc func([]T) ([]byte, error), ctx context.Context, rec *obs.Recorder, elem int64, limit, workers int, index, tally bool) {
	w.limit = limit
	w.pipe = newFramePipe(dst, enc, ctx, rec, elem, limit, workers, index, tally)
}

func (w *streamWriter[T]) write(vals []T) error {
	if w.closed {
		return ErrClosed
	}
	if err := w.pipe.firstErr(); err != nil {
		return err
	}
	// A canceled pipeline context surfaces on the next write even when no
	// frame is in flight to observe it.
	if err := w.pipe.ctx.Err(); err != nil {
		w.pipe.fail(err)
		return w.pipe.firstErr()
	}
	for len(vals) > 0 {
		if w.buf == nil {
			w.buf = w.pipe.getBuf()
		}
		take := min(w.limit-len(w.buf), len(vals))
		w.buf = append(w.buf, vals[:take]...)
		vals = vals[take:]
		if len(w.buf) == w.limit {
			w.pipe.submit(w.buf)
			w.buf = nil
			if err := w.pipe.firstErr(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *streamWriter[T]) close() error {
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	if len(w.buf) > 0 {
		w.pipe.submit(w.buf)
	}
	w.buf = nil
	err := w.pipe.close()
	if err == nil {
		// A cancel that landed after the last frame emitted still makes the
		// stream suspect: report it so the caller never mistakes a canceled
		// stream for a complete one.
		err = w.pipe.ctx.Err()
	}
	if err == nil && w.pipe.index {
		// The footer is only worth writing on a clean stream: a failed or
		// canceled pipeline leaves a plain truncated frame sequence, which
		// sequential readers already recover from frame by frame.
		err = w.pipe.writeIndex()
	}
	return err
}

// fetched is one decoded frame (or terminal error) delivered by the
// read-ahead goroutine.
type fetched[T any] struct {
	vals []T
	buf  []byte // frame byte buffer, returned for reuse
	n    int64  // stream bytes consumed (prefix + body)
	err  error
}

// streamReader is the shared implementation of Reader32/64. It keeps
// exactly one frame in flight: after frame N is received, a goroutine is
// launched that reads and decompresses frame N+1 while the caller drains
// N. The goroutine writes its single result into a buffered channel and
// exits, so an abandoned reader leaks nothing beyond one parked result.
type streamReader[T any] struct {
	src io.Reader
	dec func(frame []byte, dst []T) ([]T, error)

	next  chan fetched[T]
	frame int   // index of the next frame to be received
	off   int64 // byte offset of the next frame to be received
	buf   []byte
	pool  sync.Pool // recycled value buffers

	pending []T // unread tail of the current frame
	retired []T // current frame's full buffer, returned to pool when drained
	err     error
}

func (r *streamReader[T]) init(src io.Reader, dec func([]byte, []T) ([]T, error)) {
	r.src = src
	r.dec = dec
}

// launch starts the read-ahead for the next frame. The goroutine owns
// r.buf and the popped value buffer until its result is received.
func (r *streamReader[T]) launch() {
	buf := r.buf
	r.buf = nil
	var vals []T
	if v := r.pool.Get(); v != nil {
		vals = v.([]T)
	}
	idx, off := r.frame, r.off
	go func() {
		frame, err := readFrame(r.src, buf, idx, off)
		if err != nil {
			r.next <- fetched[T]{err: err}
			return
		}
		out, err := r.dec(frame, vals[:0])
		if err != nil {
			r.next <- fetched[T]{err: frameErr(idx, off, err)}
			return
		}
		r.next <- fetched[T]{vals: out, buf: frame, n: framePrefix + int64(len(frame))}
	}()
}

// fetch returns the next decoded frame, launching the following frame's
// read-ahead before returning so decompression overlaps the caller's
// drain.
func (r *streamReader[T]) fetch() fetched[T] {
	if r.next == nil { // first use: prime the pipeline
		r.next = make(chan fetched[T], 1)
		r.launch()
	}
	f := <-r.next
	if f.err != nil {
		return f
	}
	r.frame++
	r.off += f.n
	r.buf = f.buf
	r.launch()
	return f
}

func (r *streamReader[T]) read(dst []T) (int, error) {
	if len(dst) == 0 {
		// Surface the sticky state instead of hiding it behind (0, nil):
		// a zero-length read on an exhausted or corrupt stream reports the
		// same error a non-empty read would.
		return 0, r.err
	}
	if r.err != nil {
		return 0, r.err
	}
	total := 0
	for total < len(dst) {
		if len(r.pending) == 0 {
			f := r.fetch()
			if f.err != nil {
				r.err = f.err
				if total > 0 && f.err == io.EOF {
					return total, nil
				}
				return total, f.err
			}
			if len(f.vals) == 0 { // empty frame: recycle and keep going
				if f.vals != nil {
					r.pool.Put(f.vals[:0])
				}
				continue
			}
			r.pending, r.retired = f.vals, f.vals
		}
		n := copy(dst[total:], r.pending)
		r.pending = r.pending[n:]
		total += n
		if len(r.pending) == 0 && r.retired != nil {
			r.pool.Put(r.retired[:0])
			r.pending, r.retired = nil, nil
		}
	}
	return total, nil
}
