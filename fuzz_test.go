package pfpl

import (
	"math"
	"testing"
)

// Fuzz targets: decompression must never panic on arbitrary input, and
// compress-decompress must always honor the bound on arbitrary values.

func FuzzDecompress32(f *testing.F) {
	seed, _ := Compress32([]float32{1, 2, 3, math.Pi}, Options{Mode: ABS, Bound: 1e-3})
	f.Add(seed)
	f.Add([]byte("PFPL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress32(data, nil, Options{})
		_, _ = Decompress64(data, nil, Options{})
		_, _ = DecompressRange32(data, 0, 4)
		_, _ = Stat(data)
	})
}

func FuzzCompressRoundtrip32(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, modeRaw uint8) {
		mode := Mode(modeRaw % 3)
		vals := make([]float32, len(raw)/4)
		for i := range vals {
			bits := uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 | uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24
			vals[i] = math.Float32frombits(bits)
		}
		comp, err := Compress32(vals, Options{Mode: mode, Bound: 1e-3})
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		dec, err := Decompress32(comp, nil, Options{})
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("length %d != %d", len(dec), len(vals))
		}
		if v := VerifyBound(vals, dec, mode, 1e-3); v != 0 {
			t.Fatalf("%d bound violations (mode %v)", v, mode)
		}
	})
}
