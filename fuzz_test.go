package pfpl

import (
	"bytes"
	"math"
	"testing"

	"pfpl/internal/core"
)

// Fuzz targets: decompression must never panic on arbitrary input, and
// compress-decompress must always honor the bound on arbitrary values.

func FuzzDecompress32(f *testing.F) {
	seed, _ := Compress32([]float32{1, 2, 3, math.Pi}, Options{Mode: ABS, Bound: 1e-3})
	f.Add(seed)
	f.Add([]byte("PFPL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress32(data, nil, Options{})
		_, _ = Decompress64(data, nil, Options{})
		_, _ = DecompressRange32(data, 0, 4)
		_, _ = Stat(data)
	})
}

// FuzzOpenIndexed: opening and range-querying arbitrary bytes as an
// indexed stream must never panic or over-allocate, only error. Seeds
// cover a valid indexed stream plus the interesting mutations: truncated
// trailers, a corrupted index block, and a tampered frame payload.
func FuzzOpenIndexed(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter32(&buf, Options{Mode: ABS, Bound: 1e-3}, StreamOptions{FrameValues: 100, Index: true})
	vals := make([]float32, 250)
	for i := range vals {
		vals[i] = float32(i)
	}
	w.Write(vals)
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                     // truncated trailer
	f.Add(valid[:len(valid)-core.IndexTrailerSize]) // trailer gone entirely
	f.Add(append([]byte{}, valid[framePrefix:]...)) // missing first prefix
	crcBad := bytes.Clone(valid)
	crcBad[len(crcBad)-core.IndexTrailerSize-5] ^= 0xFF // index block corrupt
	f.Add(crcBad)
	payloadBad := bytes.Clone(valid)
	payloadBad[60] ^= 0x10 // frame payload tampered under an intact index
	f.Add(payloadBad)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := OpenIndexed(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		_, _ = x.Range32(0, min(x.NumValues(), 64))
		_, _ = x.Range64(0, 1)
		if x.NumFrames() > 0 {
			_, _ = x.Frame(0)
		}
	})
}

// le32 packs float32 bit patterns into the little-endian byte layout the
// fuzz targets decode, seeding the corpus with the special-value encoding
// paths (NaN payloads, ±Inf, denormals, signed zeros).
func le32(bits ...uint32) []byte {
	out := make([]byte, 4*len(bits))
	for i, b := range bits {
		out[i*4] = byte(b)
		out[i*4+1] = byte(b >> 8)
		out[i*4+2] = byte(b >> 16)
		out[i*4+3] = byte(b >> 24)
	}
	return out
}

func le64(bits ...uint64) []byte {
	out := make([]byte, 8*len(bits))
	for i, b := range bits {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(b >> (8 * j))
		}
	}
	return out
}

func FuzzCompressRoundtrip32(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64}, uint8(0))
	// Specials: quiet/signaling NaNs (both signs, varied payloads), ±Inf,
	// denormals straddling the smallest-normal boundary, and signed zeros —
	// each is a distinct lossless-inline encoding path in the quantizers.
	f.Add(le32(0x7FC00000, 0xFFC00000, 0x7FA55A00, 0xFF800001), uint8(0)) // NaNs
	f.Add(le32(0x7F800000, 0xFF800000, 0x3F800000, 0x7F800000), uint8(1)) // ±Inf among normals
	f.Add(le32(0x00000001, 0x807FFFFF, 0x00800000, 0x00400000), uint8(2)) // denormals & min normal
	f.Add(le32(0x00000000, 0x80000000, 0x7FC00000, 0xFF800000), uint8(1)) // ±0, NaN, -Inf
	f.Fuzz(func(t *testing.T, raw []byte, modeRaw uint8) {
		mode := Mode(modeRaw % 3)
		vals := make([]float32, len(raw)/4)
		for i := range vals {
			bits := uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 | uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24
			vals[i] = math.Float32frombits(bits)
		}
		comp, err := Compress32(vals, Options{Mode: mode, Bound: 1e-3})
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		dec, err := Decompress32(comp, nil, Options{})
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("length %d != %d", len(dec), len(vals))
		}
		if v := VerifyBound(vals, dec, mode, 1e-3); v != 0 {
			t.Fatalf("%d bound violations (mode %v)", v, mode)
		}
	})
}

func FuzzCompressRoundtrip64(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 240, 63, 0, 0, 0, 0, 0, 0, 0, 64}, uint8(0))
	f.Add(le64(0x7FF8000000000000, 0xFFF8000000000000, 0x7FF00000000000A5, 0xFFF0000000000001), uint8(0)) // NaNs
	f.Add(le64(0x7FF0000000000000, 0xFFF0000000000000, 0x3FF0000000000000), uint8(1))                     // ±Inf among normals
	f.Add(le64(0x0000000000000001, 0x800FFFFFFFFFFFFF, 0x0010000000000000), uint8(2))                     // denormals & min normal
	f.Add(le64(0x0000000000000000, 0x8000000000000000, 0x7FF8000000000000), uint8(1))                     // ±0, NaN
	f.Fuzz(func(t *testing.T, raw []byte, modeRaw uint8) {
		mode := Mode(modeRaw % 3)
		vals := make([]float64, len(raw)/8)
		for i := range vals {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits |= uint64(raw[i*8+j]) << (8 * j)
			}
			vals[i] = math.Float64frombits(bits)
		}
		comp, err := Compress64(vals, Options{Mode: mode, Bound: 1e-3})
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		dec, err := Decompress64(comp, nil, Options{})
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("length %d != %d", len(dec), len(vals))
		}
		if v := VerifyBound64(vals, dec, mode, 1e-3); v != 0 {
			t.Fatalf("%d bound violations (mode %v)", v, mode)
		}
	})
}
