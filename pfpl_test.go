package pfpl

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func synth32(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	a, b := rng.Float64(), rng.Float64()
	for i := range out {
		x := float64(i) * 0.002
		out[i] = float32(math.Sin(x+a)*2 + math.Cos(5*x+b))
	}
	return out
}

func synth64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	a := rng.Float64()
	for i := range out {
		x := float64(i) * 0.002
		out[i] = math.Sin(x+a)*2 + math.Cos(5*x)
	}
	return out
}

func TestPublicRoundtrip32(t *testing.T) {
	src := synth32(100000, 1)
	for _, mode := range []Mode{ABS, REL, NOA} {
		comp, err := Compress32(src, Options{Mode: mode, Bound: 1e-3})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		dec, err := Decompress32(comp, nil, Options{})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(dec) != len(src) {
			t.Fatalf("%v: length %d, want %d", mode, len(dec), len(src))
		}
		info, err := Stat(comp)
		if err != nil {
			t.Fatal(err)
		}
		if info.Mode != mode || info.Count != len(src) || info.Double {
			t.Errorf("%v: bad info %+v", mode, info)
		}
	}
}

func TestPublicRoundtrip64(t *testing.T) {
	src := synth64(50000, 2)
	comp, err := Compress64(src, Options{Mode: ABS, Bound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress64(comp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if d := math.Abs(src[i] - dec[i]); d > 1e-4 {
			t.Fatalf("value %d: error %g", i, d)
		}
	}
}

func TestDeviceBitCompatibility(t *testing.T) {
	// The paper's headline property: all devices produce identical bytes
	// and identical reconstructions.
	devices := []Device{Serial(), CPU(0), CPU(1), CPU(3)}
	src := synth32(3*16384+777, 3)
	for _, mode := range []Mode{ABS, REL, NOA} {
		var ref []byte
		for _, d := range devices {
			comp, err := d.Compress32(src, mode, 1e-2)
			if err != nil {
				t.Fatalf("%s %v: %v", d.Name(), mode, err)
			}
			if ref == nil {
				ref = comp
				continue
			}
			if !bytes.Equal(comp, ref) {
				t.Fatalf("%s %v: compressed stream differs from serial reference", d.Name(), mode)
			}
		}
		// Cross-device decompression: serial-compressed, each device decodes.
		var refDec []float32
		for _, d := range devices {
			dec, err := d.Decompress32(ref, nil)
			if err != nil {
				t.Fatalf("%s %v: %v", d.Name(), mode, err)
			}
			if refDec == nil {
				refDec = dec
				continue
			}
			for i := range dec {
				if math.Float32bits(dec[i]) != math.Float32bits(refDec[i]) {
					t.Fatalf("%s %v: value %d decodes differently", d.Name(), mode, i)
				}
			}
		}
	}
}

func TestDeviceBitCompatibility64(t *testing.T) {
	devices := []Device{Serial(), CPU(0), CPU(2)}
	src := synth64(5*2048+99, 4)
	for _, mode := range []Mode{ABS, REL, NOA} {
		var ref []byte
		for _, d := range devices {
			comp, err := d.Compress64(src, mode, 1e-3)
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			if ref == nil {
				ref = comp
			} else if !bytes.Equal(comp, ref) {
				t.Fatalf("%s %v: stream differs", d.Name(), mode)
			}
		}
	}
}

func TestBadOptions(t *testing.T) {
	src := synth32(100, 5)
	if _, err := Compress32(src, Options{Mode: ABS, Bound: 0}); !errors.Is(err, ErrBadBound) {
		t.Errorf("zero bound: %v", err)
	}
	if _, err := Compress32(src, Options{Mode: ABS, Bound: -1}); !errors.Is(err, ErrBadBound) {
		t.Errorf("negative bound: %v", err)
	}
	if _, err := Compress32(src, Options{Mode: ABS, Bound: 1e-40}); !errors.Is(err, ErrBoundSmall) {
		t.Errorf("tiny ABS bound: %v", err)
	}
	if _, err := Decompress32([]byte("nonsense"), nil, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage stream: %v", err)
	}
	// A double stream must be rejected by the 32-bit decoder and vice versa.
	c64, err := Compress64(synth64(100, 6), Options{Mode: ABS, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress32(c64, nil, Options{}); err == nil {
		t.Error("float64 stream accepted by Decompress32")
	}
	c32, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress64(c32, nil, Options{}); err == nil {
		t.Error("float32 stream accepted by Decompress64")
	}
}

func TestParallelMatchesSerialManySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 20; iter++ {
		n := rng.Intn(200000)
		src := synth32(n, int64(iter))
		a, err := Serial().Compress32(src, ABS, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CPU(0).Compress32(src, ABS, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("n=%d: parallel differs from serial", n)
		}
	}
}

func TestNOARangeRecordedInStream(t *testing.T) {
	src := []float32{-2, 0, 6} // range 8
	comp, err := Compress32(src, Options{Mode: NOA, Bound: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Stat(comp)
	if err != nil {
		t.Fatal(err)
	}
	if info.NOARange != 8 {
		t.Errorf("recorded range %g, want 8", info.NOARange)
	}
	dec, err := Decompress32(comp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if d := math.Abs(float64(src[i] - dec[i])); d > 0.01*8 {
			t.Errorf("value %d error %g exceeds 0.08", i, d)
		}
	}
}
