package pfpl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
)

// serialStream32 is the reference streamed encoding: each frame compressed
// on the calling goroutine and emitted with its length prefix, no pipeline
// involved. The pipelined writer must reproduce these bytes exactly.
func serialStream32(t *testing.T, vals []float32, opts Options, frameValues int) []byte {
	t.Helper()
	var out bytes.Buffer
	for lo := 0; lo < len(vals); lo += frameValues {
		hi := min(lo+frameValues, len(vals))
		comp, err := Compress32(vals[lo:hi], opts)
		if err != nil {
			t.Fatal(err)
		}
		var hdr [framePrefix]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(comp)))
		out.Write(hdr[:])
		out.Write(comp)
	}
	return out.Bytes()
}

func serialStream64(t *testing.T, vals []float64, opts Options, frameValues int) []byte {
	t.Helper()
	var out bytes.Buffer
	for lo := 0; lo < len(vals); lo += frameValues {
		hi := min(lo+frameValues, len(vals))
		comp, err := Compress64(vals[lo:hi], opts)
		if err != nil {
			t.Fatal(err)
		}
		var hdr [framePrefix]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(comp)))
		out.Write(hdr[:])
		out.Write(comp)
	}
	return out.Bytes()
}

// raggedWrite32 feeds vals to the writer in deliberately uneven slices so
// frame boundaries never coincide with Write-call boundaries.
func raggedWrite32(t *testing.T, w *Writer32, vals []float32) {
	t.Helper()
	for lo := 0; lo < len(vals); {
		hi := min(lo+1+(lo*7919)%977, len(vals))
		if err := w.Write(vals[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
}

func raggedWrite64(t *testing.T, w *Writer64, vals []float64) {
	t.Helper()
	for lo := 0; lo < len(vals); {
		hi := min(lo+1+(lo*7919)%977, len(vals))
		if err := w.Write(vals[lo:hi]); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
}

// TestPipelinedMatchesSerial pins the tentpole guarantee: the pipelined
// writer's byte stream is identical to serial frame-by-frame emission for
// every worker count × frame size × mode × precision combination.
func TestPipelinedMatchesSerial(t *testing.T) {
	configs := []struct {
		mode  Mode
		bound float64
	}{
		{ABS, 1e-3},
		{REL, 1e-2},
		{NOA, 1e-4},
	}
	frameSizes := []int{1, 2047, 4096, DefaultFrameValues}
	workerCounts := []int{1, 2, 7, 0} // 0 = GOMAXPROCS
	src32 := synth32(5000, 77)
	src64 := synth64(5000, 78)

	for _, cfg := range configs {
		opts := Options{Mode: cfg.mode, Bound: cfg.bound}
		for _, fv := range frameSizes {
			if fv == 1 && testing.Short() {
				continue // 5000 single-value frames × all worker counts is the slow cell
			}
			ref32 := serialStream32(t, src32, opts, fv)
			ref64 := serialStream64(t, src64, opts, fv)
			for _, wk := range workerCounts {
				name := fmt.Sprintf("%v/frame=%d/workers=%d", cfg.mode, fv, wk)
				sopts := StreamOptions{Concurrency: wk, FrameValues: fv}
				t.Run(name+"/f32", func(t *testing.T) {
					var sink bytes.Buffer
					w, err := NewWriter32(&sink, opts, sopts)
					if err != nil {
						t.Fatal(err)
					}
					raggedWrite32(t, w, src32)
					if err := w.Close(); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(sink.Bytes(), ref32) {
						t.Fatalf("pipelined stream differs from serial (%d vs %d bytes)",
							sink.Len(), len(ref32))
					}
				})
				t.Run(name+"/f64", func(t *testing.T) {
					var sink bytes.Buffer
					w, err := NewWriter64(&sink, opts, sopts)
					if err != nil {
						t.Fatal(err)
					}
					raggedWrite64(t, w, src64)
					if err := w.Close(); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(sink.Bytes(), ref64) {
						t.Fatalf("pipelined stream differs from serial (%d vs %d bytes)",
							sink.Len(), len(ref64))
					}
				})
			}
		}
	}
}

// failAfterWriter fails every Write once the byte budget is spent.
type failAfterWriter struct {
	budget int
	err    error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.budget < len(p) {
		return 0, w.err
	}
	w.budget -= len(p)
	return len(p), nil
}

// TestStreamWriterWriteError checks error determinism: the first frame
// whose emission fails reports the sink's error, Write turns sticky, and
// Close propagates the error exactly once.
func TestStreamWriterWriteError(t *testing.T) {
	src := synth32(20000, 79)
	sinkErr := errors.New("sink full")
	for _, wk := range []int{1, 7} {
		sink := &failAfterWriter{budget: 3000, err: sinkErr}
		w, err := NewWriter32(sink, Options{Mode: ABS, Bound: 1e-3}, StreamOptions{Concurrency: wk, FrameValues: 500})
		if err != nil {
			t.Fatal(err)
		}
		var writeErr error
		for lo := 0; lo < len(src); lo += 1000 {
			if writeErr = w.Write(src[lo : lo+1000]); writeErr != nil {
				break
			}
		}
		closeErr := w.Close()
		if !errors.Is(closeErr, sinkErr) {
			t.Fatalf("workers=%d: Close returned %v, want the sink error", wk, closeErr)
		}
		if writeErr != nil && !errors.Is(writeErr, sinkErr) {
			t.Fatalf("workers=%d: Write surfaced %v, want the sink error", wk, writeErr)
		}
		if err := w.Write(src[:1]); !errors.Is(err, ErrClosed) {
			t.Fatalf("workers=%d: Write after Close returned %v", wk, err)
		}
		if err := w.Close(); !errors.Is(err, ErrClosed) {
			t.Fatalf("workers=%d: second Close returned %v, want ErrClosed", wk, err)
		}
	}
}

// TestStreamWriterCompressError routes a per-frame compression failure
// (ABS bound below float32's smallest normal) through the pipeline.
func TestStreamWriterCompressError(t *testing.T) {
	src := synth32(4000, 80)
	w, err := NewWriter32(io.Discard, Options{Mode: ABS, Bound: 1e-40}, StreamOptions{Concurrency: 4, FrameValues: 256})
	if err != nil {
		t.Fatal(err)
	}
	werr := w.Write(src)
	cerr := w.Close()
	if !errors.Is(cerr, ErrBoundSmall) {
		t.Fatalf("Close returned %v, want ErrBoundSmall", cerr)
	}
	if werr != nil && !errors.Is(werr, ErrBoundSmall) {
		t.Fatalf("Write surfaced %v, want ErrBoundSmall", werr)
	}
}

// buildStream32 returns a healthy two-frame stream and the byte offset of
// the second frame.
func buildStream32(t *testing.T, frameValues, n int) ([]byte, int64) {
	t.Helper()
	var sink bytes.Buffer
	w, err := NewWriter32(&sink, Options{Mode: ABS, Bound: 1e-3}, StreamOptions{Concurrency: 1, FrameValues: frameValues})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(synth32(n, 81)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := sink.Bytes()
	frame0 := int64(binary.LittleEndian.Uint32(data[:framePrefix]))
	return data, framePrefix + frame0
}

// TestZeroLengthReadSurfacesError pins the len(dst)==0 bugfix: a
// zero-length read must report the sticky error instead of (0, nil).
func TestZeroLengthReadSurfacesError(t *testing.T) {
	data, _ := buildStream32(t, 100, 200)

	// Healthy reader: zero-length read is a clean no-op.
	r := NewReader32(bytes.NewReader(data), Options{})
	if n, err := r.Read(nil); n != 0 || err != nil {
		t.Fatalf("zero-length read on healthy stream: (%d, %v)", n, err)
	}

	// At EOF the sticky io.EOF must surface.
	buf := make([]float32, 200)
	for {
		if _, err := r.Read(buf); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Read(nil); err != io.EOF {
		t.Fatalf("zero-length read at EOF returned %v, want io.EOF", err)
	}

	// After ErrCorrupt the sticky corruption error must surface.
	r = NewReader32(bytes.NewReader(data[:len(data)-3]), Options{})
	var readErr error
	for {
		_, readErr = r.Read(buf)
		if readErr != nil {
			break
		}
	}
	if !errors.Is(readErr, ErrCorrupt) {
		t.Fatalf("truncated stream returned %v, want ErrCorrupt", readErr)
	}
	if _, err := r.Read(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero-length read after corruption returned %v, want the sticky ErrCorrupt", err)
	}
}

// TestFrameErrorContext pins the readFrame bugfix: corruption errors name
// the frame index and byte offset while staying errors.Is-compatible.
func TestFrameErrorContext(t *testing.T) {
	data, frame1Off := buildStream32(t, 100, 200)

	// Truncate inside the second frame's body.
	r := NewReader32(bytes.NewReader(data[:len(data)-3]), Options{})
	buf := make([]float32, 200)
	var err error
	for {
		if _, err = r.Read(buf); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	want := fmt.Sprintf("frame 1 at byte %d", frame1Off)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}

	// Truncate inside the second frame's length prefix.
	r = NewReader32(bytes.NewReader(data[:frame1Off+2]), Options{})
	for {
		if _, err = r.Read(buf); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), want) {
		t.Fatalf("truncated prefix: got %q, want ErrCorrupt naming %q", err, want)
	}
}

// TestFrameLengthBounds pins the 32-bit-safe frame-length validation: a
// declared length of zero or above maxFrameBytes is corruption, reported
// with frame context.
func TestFrameLengthBounds(t *testing.T) {
	for _, declared := range []uint32{0, 1<<31 + 1, 0xFFFFFFFF} {
		var raw [8]byte
		binary.LittleEndian.PutUint32(raw[:4], declared)
		r := NewReader32(bytes.NewReader(raw[:]), Options{})
		_, err := r.Read(make([]float32, 8))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("declared length %d: got %v, want ErrCorrupt", declared, err)
		}
		if !strings.Contains(err.Error(), "frame 0 at byte 0") {
			t.Fatalf("declared length %d: error %q lacks frame context", declared, err)
		}
	}
}

// TestStreamReadAheadRoundtrip exercises the reader pipeline across many
// frames and drain patterns, double precision included.
func TestStreamReadAheadRoundtrip(t *testing.T) {
	src := synth64(30000, 82)
	var sink bytes.Buffer
	w, err := NewWriter64(&sink, Options{Mode: ABS, Bound: 1e-6}, StreamOptions{FrameValues: 1024})
	if err != nil {
		t.Fatal(err)
	}
	raggedWrite64(t, w, src)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader64(bytes.NewReader(sink.Bytes()), Options{})
	got := make([]float64, 0, len(src))
	buf := make([]float64, 700)
	for i := 0; ; i++ {
		// Drain sizes that straddle frame boundaries in varying ways.
		buf = buf[:1+(i*131)%700]
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(src) {
		t.Fatalf("read %d values, want %d", len(got), len(src))
	}
	if v := VerifyBound64(src, got, ABS, 1e-6); v != 0 {
		t.Fatalf("%d bound violations", v)
	}
}

// TestStreamWorkersResolution checks the GOMAXPROCS default.
func TestStreamWorkersResolution(t *testing.T) {
	if got := streamWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("streamWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := streamWorkers(3); got != 3 {
		t.Fatalf("streamWorkers(3) = %d", got)
	}
	// FrameValues above the portable cap is clamped, not rejected.
	if fv := (StreamOptions{FrameValues: 1 << 30}).frameValues(); fv != maxFrameValues {
		t.Fatalf("frameValues clamp: got %d, want %d", fv, maxFrameValues)
	}
}
