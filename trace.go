package pfpl

// Public tracing surface. A Tracer records per-chunk stage spans (quantize,
// delta, shuffle, encode, carry-wait, emit, decode) from whichever executor
// runs the call, aggregates them into CompressStats, and exports the raw
// spans as Chrome trace-event JSON viewable in Perfetto or chrome://tracing.
// Tracing is strictly observational: the compressed bytes with a Tracer
// attached are identical to the bytes without one (the conformance suite's
// golden vectors pin the format; the obs layer never touches payload data).

import (
	"io"

	"pfpl/internal/core"
	"pfpl/internal/cpucomp"
	"pfpl/internal/gpusim"
	"pfpl/internal/obs"
)

// Tracer collects stage spans and aggregate statistics from a traced
// compression or decompression call. A nil *Tracer is a valid no-op
// everywhere one is accepted, and the nil fast path costs nothing on the
// hot loops (pinned by the zero-allocation tests in internal/core).
type Tracer = obs.Recorder

// CompressStats is the aggregate view of a Tracer: span and unit counts,
// bytes in and out, and per-stage time totals. It survives span-ring
// wraparound — aggregates are updated on every Record, not derived from the
// retained spans.
type CompressStats = obs.Stats

// NewTracer creates a Tracer retaining up to spanCapacity spans (oldest
// dropped first). spanCapacity <= 0 keeps aggregates only, which is the
// cheap mode for always-on stats without timeline export.
func NewTracer(spanCapacity int) *Tracer { return obs.New(spanCapacity) }

// WriteTrace exports everything t recorded as Chrome trace-event JSON: one
// named track per executor lane (worker, simulated SM, stream worker), one
// complete event per stage span. The output loads directly in Perfetto.
func WriteTrace(w io.Writer, t *Tracer, process string) error {
	return t.WriteChromeTrace(w, process)
}

// ChunkOutcomes reports, without decoding, how a compressed container's
// chunks fared: the total chunk count, how many fell back to raw (lossless)
// storage because quantization could not hold the bound, and the summed
// payload bytes behind the chunk table. Checksummed streams are verified
// first. It complements Stat, which stops at the header.
func ChunkOutcomes(buf []byte) (chunks, rawChunks int, payloadBytes int64, err error) {
	buf, err = core.VerifyAndStripChecksum(buf)
	if err != nil {
		return 0, 0, 0, err
	}
	h, err := core.ParseHeader(buf)
	if err != nil {
		return 0, 0, 0, err
	}
	_, lengths, raws, _, err := core.ChunkTable(buf, &h)
	if err != nil {
		return 0, 0, 0, err
	}
	for i, n := range lengths {
		payloadBytes += int64(n)
		if raws[i] {
			rawChunks++
		}
	}
	return h.NumChunks, rawChunks, payloadBytes, nil
}

// traceDevice is the optional Device extension: a device that can thread a
// Tracer through its executor. All built-in devices implement it; a custom
// Device that does not simply runs untraced.
type traceDevice interface {
	compress32Traced(src []float32, mode Mode, bound float64, rec *Tracer) ([]byte, error)
	decompress32Traced(buf []byte, dst []float32, rec *Tracer) ([]float32, error)
	compress64Traced(src []float64, mode Mode, bound float64, rec *Tracer) ([]byte, error)
	decompress64Traced(buf []byte, dst []float64, rec *Tracer) ([]float64, error)
}

func (serialDevice) compress32Traced(src []float32, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return core.CompressSerial32Traced(src, mode, bound, rec)
}

func (serialDevice) decompress32Traced(buf []byte, dst []float32, rec *Tracer) ([]float32, error) {
	return core.DecompressSerial32Traced(buf, dst, rec)
}

func (serialDevice) compress64Traced(src []float64, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return core.CompressSerial64Traced(src, mode, bound, rec)
}

func (serialDevice) decompress64Traced(buf []byte, dst []float64, rec *Tracer) ([]float64, error) {
	return core.DecompressSerial64Traced(buf, dst, rec)
}

func (d cpuDevice) compress32Traced(src []float32, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return cpucomp.Compress32Traced(src, mode, bound, d.workers, rec)
}

func (d cpuDevice) decompress32Traced(buf []byte, dst []float32, rec *Tracer) ([]float32, error) {
	return cpucomp.Decompress32Traced(buf, dst, d.workers, rec)
}

func (d cpuDevice) compress64Traced(src []float64, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return cpucomp.Compress64Traced(src, mode, bound, d.workers, rec)
}

func (d cpuDevice) decompress64Traced(buf []byte, dst []float64, rec *Tracer) ([]float64, error) {
	return cpucomp.Decompress64Traced(buf, dst, d.workers, rec)
}

func (d *CPUPool) compress32Traced(src []float32, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return d.pool.Compress32Traced(src, mode, bound, rec)
}

func (d *CPUPool) decompress32Traced(buf []byte, dst []float32, rec *Tracer) ([]float32, error) {
	return d.pool.Decompress32Traced(buf, dst, rec)
}

func (d *CPUPool) compress64Traced(src []float64, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return d.pool.Compress64Traced(src, mode, bound, rec)
}

func (d *CPUPool) decompress64Traced(buf []byte, dst []float64, rec *Tracer) ([]float64, error) {
	return d.pool.Decompress64Traced(buf, dst, rec)
}

func (d gpuDevice) compress32Traced(src []float32, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return gpusim.Compress32Traced(d.model, src, mode, bound, rec)
}

func (d gpuDevice) decompress32Traced(buf []byte, dst []float32, rec *Tracer) ([]float32, error) {
	return gpusim.Decompress32Traced(d.model, buf, dst, rec)
}

func (d gpuDevice) compress64Traced(src []float64, mode Mode, bound float64, rec *Tracer) ([]byte, error) {
	return gpusim.Compress64Traced(d.model, src, mode, bound, rec)
}

func (d gpuDevice) decompress64Traced(buf []byte, dst []float64, rec *Tracer) ([]float64, error) {
	return gpusim.Decompress64Traced(d.model, buf, dst, rec)
}
