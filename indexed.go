package pfpl

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"pfpl/internal/core"
)

// Random access into indexed framed streams. A stream written with
// StreamOptions.Index carries a footer index: per-frame records (stream
// offset, length, chunk/value counts, SHA-256) plus a fixed trailer
// locating them. OpenIndexed reads just the footer, after which Range32/64
// seek directly to the frames covering a value window and decode only the
// chunks inside it — the work is proportional to the window, not to the
// stream. Index-less (v1) streams are rejected with ErrNoIndex and keep
// decoding through the sequential Reader32/64 path unchanged.

// ErrNoIndex reports that a stream carries no footer index and therefore
// supports only sequential decoding.
var ErrNoIndex = errors.New("pfpl: stream has no footer index")

// FrameEntry describes one frame of an indexed stream, as recorded in the
// footer index.
type FrameEntry struct {
	Offset int64                 // stream byte offset of the frame's length prefix
	Length int64                 // frame body length, excluding the 4-byte prefix
	Chunks int                   // chunk count of the frame's container
	Values int64                 // element count of the frame's container
	Digest [core.DigestSize]byte // SHA-256 of the frame body
}

// IndexedStats counts the work an Indexed handle has performed. The
// acceptance property of random access — work proportional to the window,
// not the object — is directly observable here: a small Range on a large
// stream leaves BytesRead far below the stream size.
type IndexedStats struct {
	BytesRead     int64 // bytes fetched from the underlying ReaderAt
	FramesTouched int64 // frames whose header or payload was read
	ChunksDecoded int64 // chunks actually decoded
}

// Indexed is a random-access handle over an indexed framed stream. Methods
// are safe for concurrent use when the underlying io.ReaderAt is (os.File
// and bytes.Reader both are).
type Indexed struct {
	r      io.ReaderAt
	size   int64
	recs   []core.FrameRecord
	cum    []int64 // cum[i] = global index of frame i's first value; len(recs)+1
	prec64 bool

	bytesRead     atomic.Int64
	framesTouched atomic.Int64
	chunksDecoded atomic.Int64
}

// OpenIndexed opens a stream of the given size for random access through
// its footer index. It reads only the trailer, the index block, and the
// first frame's header — not the frames. Streams without a footer index
// return ErrNoIndex; a present but damaged footer returns ErrCorrupt.
func OpenIndexed(r io.ReaderAt, size int64) (*Indexed, error) {
	if size < core.IndexTrailerSize {
		return nil, ErrNoIndex
	}
	x := &Indexed{r: r, size: size}
	trailer := make([]byte, core.IndexTrailerSize)
	if err := x.readAt(trailer, size-core.IndexTrailerSize); err != nil {
		return nil, err
	}
	if !core.HasIndexTrailer(trailer) {
		return nil, ErrNoIndex
	}
	blockOff, blockLen, crc, err := core.ParseIndexTrailer(trailer, size)
	if err != nil {
		return nil, err
	}
	block := make([]byte, blockLen)
	if err := x.readAt(block, blockOff); err != nil {
		return nil, err
	}
	x.recs, err = core.ParseIndex(block, crc, blockOff)
	if err != nil {
		return nil, err
	}
	x.cum = make([]int64, len(x.recs)+1)
	for i, rec := range x.recs {
		x.cum[i+1] = x.cum[i] + rec.Values
	}
	if len(x.recs) > 0 {
		// The first frame's header pins the stream's precision and checks
		// the index against a real container before any Range call.
		h, _, _, _, err := x.frameHeader(0)
		if err != nil {
			return nil, err
		}
		x.prec64 = h.Prec64
	}
	return x, nil
}

// NumValues returns the total element count across all frames.
func (x *Indexed) NumValues() int64 { return x.cum[len(x.recs)] }

// NumFrames returns the frame count.
func (x *Indexed) NumFrames() int { return len(x.recs) }

// Double reports whether the stream holds double-precision elements.
func (x *Indexed) Double() bool { return x.prec64 }

// Entries returns a copy of the footer index records.
func (x *Indexed) Entries() []FrameEntry {
	out := make([]FrameEntry, len(x.recs))
	for i, r := range x.recs {
		out[i] = FrameEntry{Offset: r.Offset, Length: r.Length, Chunks: r.Chunks, Values: r.Values, Digest: r.Digest}
	}
	return out
}

// Stats returns the cumulative work counters of this handle.
func (x *Indexed) Stats() IndexedStats {
	return IndexedStats{
		BytesRead:     x.bytesRead.Load(),
		FramesTouched: x.framesTouched.Load(),
		ChunksDecoded: x.chunksDecoded.Load(),
	}
}

// Frame reads frame i's full body and verifies it against the indexed
// SHA-256, turning silent corruption (in storage or a cache) into a clean
// ErrCorrupt. The returned bytes are a standalone PFPL container.
func (x *Indexed) Frame(i int) ([]byte, error) {
	if i < 0 || i >= len(x.recs) {
		return nil, fmt.Errorf("pfpl: frame %d out of range [0,%d)", i, len(x.recs))
	}
	rec := x.recs[i]
	buf := make([]byte, rec.Length)
	if err := x.readAt(buf, rec.Offset+framePrefix); err != nil {
		return nil, err
	}
	x.framesTouched.Add(1)
	if core.FrameDigest(buf) != rec.Digest {
		return nil, fmt.Errorf("%w: frame %d digest mismatch", ErrCorrupt, i)
	}
	return buf, nil
}

// Range32 decodes count values starting at global element offset from a
// single-precision indexed stream, seeking directly to the covering frames
// and decoding only the covering chunks of each.
func (x *Indexed) Range32(offset, count int64) ([]float32, error) {
	if err := x.checkRange(offset, count, false); err != nil || count == 0 {
		return nil, err
	}
	out := make([]float32, count)
	err := x.eachCoveringFrame(offset, count, func(f int, frameOff, frameCnt, outPos int64) error {
		vals, err := decodeFrameWindow(x, f, frameOff, frameCnt, decode32)
		if err != nil {
			return err
		}
		copy(out[outPos:], vals)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Range64 is the double-precision counterpart of Range32.
func (x *Indexed) Range64(offset, count int64) ([]float64, error) {
	if err := x.checkRange(offset, count, true); err != nil || count == 0 {
		return nil, err
	}
	out := make([]float64, count)
	err := x.eachCoveringFrame(offset, count, func(f int, frameOff, frameCnt, outPos int64) error {
		vals, err := decodeFrameWindow(x, f, frameOff, frameCnt, decode64)
		if err != nil {
			return err
		}
		copy(out[outPos:], vals)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// checkRange validates a window request against the stream's extent and
// precision, mirroring DecompressRange32/64's overflow-safe guards.
func (x *Indexed) checkRange(offset, count int64, double bool) error {
	n := x.NumValues()
	if offset < 0 || count < 0 || offset > n || count > n-offset {
		return fmt.Errorf("%w: window [%d,+%d) outside [0,%d)", ErrCorrupt, offset, count, n)
	}
	if count > 0 && x.prec64 != double {
		return fmt.Errorf("%w: precision mismatch", ErrCorrupt)
	}
	return nil
}

// eachCoveringFrame locates the frames covering [offset, offset+count) by
// binary search over the cumulative value counts and invokes fn once per
// frame with the in-frame window and the output position.
func (x *Indexed) eachCoveringFrame(offset, count int64, fn func(f int, frameOff, frameCnt, outPos int64) error) error {
	first := sort.Search(len(x.recs), func(i int) bool { return x.cum[i+1] > offset })
	for f := first; f < len(x.recs) && x.cum[f] < offset+count; f++ {
		lo := max(x.cum[f], offset)
		hi := min(x.cum[f+1], offset+count)
		if err := fn(f, lo-x.cum[f], hi-lo, lo-offset); err != nil {
			return err
		}
	}
	return nil
}

// frameHeader fetches and validates frame i's container header and raw
// chunk-size table, returning the stream offset and byte length of the
// frame's payload area. Index records and container headers describe the
// same frame twice; any disagreement (chunk count, value count, extent) is
// corruption of one of them and fails here rather than decoding garbage.
func (x *Indexed) frameHeader(i int) (core.Header, []byte, int64, int, error) {
	rec := x.recs[i]
	hl := int64(core.ContainerHeaderSize) + 4*int64(rec.Chunks)
	if hl > rec.Length {
		return core.Header{}, nil, 0, 0, fmt.Errorf("%w: frame %d: index chunk count exceeds frame", ErrCorrupt, i)
	}
	buf := make([]byte, hl)
	if err := x.readAt(buf, rec.Offset+framePrefix); err != nil {
		return core.Header{}, nil, 0, 0, err
	}
	x.framesTouched.Add(1)
	h, err := core.ParseHeader(buf)
	if err != nil {
		return core.Header{}, nil, 0, 0, fmt.Errorf("pfpl: frame %d: %w", i, err)
	}
	if h.NumChunks != rec.Chunks || int64(h.Count) != rec.Values {
		return core.Header{}, nil, 0, 0, fmt.Errorf(
			"%w: frame %d: index (%d chunks, %d values) disagrees with container (%d chunks, %d values)",
			ErrCorrupt, i, rec.Chunks, rec.Values, h.NumChunks, h.Count)
	}
	payloadLen := int(rec.Length - hl)
	if core.HasChecksum(buf) {
		// A checksummed frame ends in a 4-byte CRC trailer that is not
		// chunk payload. Whole-frame CRC verification would defeat partial
		// reads; integrity on this path comes from the per-frame SHA-256
		// (Frame) and the per-window bounds checks.
		payloadLen -= 4
	}
	if payloadLen < 0 {
		return core.Header{}, nil, 0, 0, fmt.Errorf("%w: frame %d payload underflow", ErrCorrupt, i)
	}
	return h, buf[core.ContainerHeaderSize:], rec.Offset + framePrefix + hl, payloadLen, nil
}

// decode32/decode64 adapt DecodeChunk32/64 to the shared window decoder.
type chunkDecoder[T any] func(p *core.Params, payload []byte, raw bool, dst []T, sAny any) error

func decode32(p *core.Params, payload []byte, raw bool, dst []float32, sAny any) error {
	return core.DecodeChunk32(p, payload, raw, dst, sAny.(*core.Scratch32))
}

func decode64(p *core.Params, payload []byte, raw bool, dst []float64, sAny any) error {
	return core.DecodeChunk64(p, payload, raw, dst, sAny.(*core.Scratch64))
}

// decodeFrameWindow decodes cnt values starting at in-frame offset off from
// frame f, reading only the frame's header+table and the covering payload
// span, and decoding only the covering chunks.
func decodeFrameWindow[T any](x *Indexed, f int, off, cnt int64, dec chunkDecoder[T]) ([]T, error) {
	h, table, payloadOff, payloadLen, err := x.frameHeader(f)
	if err != nil {
		return nil, err
	}
	var elemsPerChunk int
	var scratch any
	if h.Prec64 {
		elemsPerChunk = core.ChunkWords64
		scratch = &core.Scratch64{}
	} else {
		elemsPerChunk = core.ChunkWords32
		scratch = &core.Scratch32{}
	}
	n := int64(h.Len())
	if off < 0 || cnt <= 0 || off+cnt > n {
		return nil, fmt.Errorf("%w: frame %d window out of range", ErrCorrupt, f)
	}
	p, err := core.ParamsForHeader(&h)
	if err != nil {
		return nil, err
	}
	firstChunk := int(off) / elemsPerChunk
	lastChunk := int(off+cnt-1) / elemsPerChunk
	offsets, lengths, raws, err := core.ChunkWindow(table, firstChunk, lastChunk)
	if err != nil {
		return nil, fmt.Errorf("pfpl: frame %d: %w", f, err)
	}
	w := lastChunk - firstChunk
	spanOff, spanEnd := offsets[0], offsets[w]+lengths[w]
	if spanEnd > payloadLen {
		return nil, fmt.Errorf("%w: frame %d chunk window exceeds payload", ErrCorrupt, f)
	}
	span := make([]byte, spanEnd-spanOff)
	if err := x.readAt(span, payloadOff+int64(spanOff)); err != nil {
		return nil, err
	}
	out := make([]T, cnt)
	tmp := make([]T, elemsPerChunk)
	for c := firstChunk; c <= lastChunk; c++ {
		lo := int64(c) * int64(elemsPerChunk)
		hi := min(lo+int64(elemsPerChunk), n)
		dst := tmp[:hi-lo]
		i := c - firstChunk
		pl := span[offsets[i]-spanOff : offsets[i]-spanOff+lengths[i]]
		if err := dec(&p, pl, raws[i], dst, scratch); err != nil {
			return nil, fmt.Errorf("pfpl: frame %d: %w", f, err)
		}
		from := max(lo, off)
		to := min(hi, off+cnt)
		copy(out[from-off:to-off], dst[from-lo:to-lo])
	}
	x.chunksDecoded.Add(int64(w) + 1)
	return out, nil
}

// readAt fills buf from the stream at off, counting the bytes toward the
// handle's work statistics.
func (x *Indexed) readAt(buf []byte, off int64) error {
	n, err := x.r.ReadAt(buf, off)
	x.bytesRead.Add(int64(n))
	if err == io.EOF && n == len(buf) {
		err = nil
	}
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: stream truncated at byte %d", ErrCorrupt, off)
		}
		return err
	}
	return nil
}
