package pfpl

import (
	"pfpl/internal/core"
	"pfpl/internal/gpusim"
)

// GPUModel identifies one of the simulated GPU devices (the hardware the
// paper evaluated, Table I and §V-F).
type GPUModel = gpusim.DeviceModel

// The simulated GPU models.
var (
	RTX4090      = gpusim.RTX4090
	A100         = gpusim.A100
	RTX3080Ti    = gpusim.RTX3080Ti
	RTX2070Super = gpusim.RTX2070Super
	TitanXp      = gpusim.TitanXp
)

// gpuDevice executes the CUDA formulation of PFPL on the deterministic GPU
// simulator. Output bytes are identical to the CPU devices'; only the
// modelled throughput differs between GPU models.
type gpuDevice struct{ model GPUModel }

func (d gpuDevice) Name() string { return "PFPL-CUDA(" + d.model.Name + ")" }

func (d gpuDevice) Compress32(src []float32, mode Mode, bound float64) ([]byte, error) {
	return gpusim.Compress32(d.model, src, mode, bound)
}

func (d gpuDevice) Decompress32(buf []byte, dst []float32) ([]float32, error) {
	return gpusim.Decompress32(d.model, buf, dst)
}

func (d gpuDevice) Compress64(src []float64, mode Mode, bound float64) ([]byte, error) {
	return gpusim.Compress64(d.model, src, mode, bound)
}

func (d gpuDevice) Decompress64(buf []byte, dst []float64) ([]float64, error) {
	return gpusim.Decompress64(d.model, buf, dst)
}

// GPU returns the simulated GPU device for the given model.
func GPU(model GPUModel) Device { return gpuDevice{model: model} }

// VerifyBound audits a reconstruction against the original data, returning
// the number of error-bound violations — the check the paper applies to all
// compressors in Table III. For REL, a sign flip counts as a violation.
func VerifyBound(orig, recon []float32, mode Mode, bound float64) int {
	if len(orig) != len(recon) {
		return len(orig)
	}
	var noaBound float64
	if mode == NOA {
		noaBound = bound * core.Range32(orig)
	}
	violations := 0
	for i := range orig {
		if !value32OK(orig[i], recon[i], mode, bound, noaBound) {
			violations++
		}
	}
	return violations
}

// VerifyBound64 is the double-precision counterpart of VerifyBound.
func VerifyBound64(orig, recon []float64, mode Mode, bound float64) int {
	if len(orig) != len(recon) {
		return len(orig)
	}
	var noaBound float64
	if mode == NOA {
		noaBound = bound * core.Range64(orig)
	}
	violations := 0
	for i := range orig {
		if !value64OK(orig[i], recon[i], mode, bound, noaBound) {
			violations++
		}
	}
	return violations
}

func value32OK(v, r float32, mode Mode, bound, noaBound float64) bool {
	return value64OK(float64(v), float64(r), mode, bound, noaBound)
}

func value64OK(v, r float64, mode Mode, bound, noaBound float64) bool {
	if v != v { // NaN: any NaN reconstruction is acceptable
		return r != r
	}
	if v-v != 0 { // infinity must be preserved exactly
		return r == v
	}
	switch mode {
	case ABS:
		d := v - r
		if d < 0 {
			d = -d
		}
		return d <= bound
	case NOA:
		d := v - r
		if d < 0 {
			d = -d
		}
		return d <= noaBound
	case REL:
		if v == 0 {
			return r == 0
		}
		d := v - r
		if d < 0 {
			d = -d
		}
		m := v
		if m < 0 {
			m = -m
		}
		if !(d/m <= bound) {
			return false
		}
		return r == 0 || (v < 0) == (r < 0)
	}
	return false
}
