package pfpl

import (
	"bytes"
	"math"
	"testing"
)

func TestGPUDeviceInPublicAPI(t *testing.T) {
	src := synth32(70000, 20)
	for _, mode := range []Mode{ABS, REL, NOA} {
		ref, err := Compress32(src, Options{Mode: mode, Bound: 1e-3, Device: Serial()})
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := Compress32(src, Options{Mode: mode, Bound: 1e-3, Device: GPU(RTX4090)})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, gpu) {
			t.Fatalf("%v: GPU stream differs", mode)
		}
		// Compress on GPU, decompress on CPU and vice versa.
		cpuDec, err := Decompress32(gpu, nil, Options{Device: CPU(0)})
		if err != nil {
			t.Fatal(err)
		}
		gpuDec, err := Decompress32(ref, nil, Options{Device: GPU(A100)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range cpuDec {
			if math.Float32bits(cpuDec[i]) != math.Float32bits(gpuDec[i]) {
				t.Fatalf("%v: cross-device decode differs at %d", mode, i)
			}
		}
		if v := VerifyBound(src, cpuDec, mode, 1e-3); v != 0 {
			t.Errorf("%v: %d bound violations", mode, v)
		}
	}
}

func TestVerifyBoundDetectsViolations(t *testing.T) {
	orig := []float32{1, 2, 3}
	recon := []float32{1, 2.5, 3}
	if v := VerifyBound(orig, recon, ABS, 0.1); v != 1 {
		t.Errorf("ABS: got %d violations, want 1", v)
	}
	if v := VerifyBound(orig, recon, ABS, 1); v != 0 {
		t.Errorf("ABS loose: got %d violations, want 0", v)
	}
	if v := VerifyBound(orig, recon, REL, 0.01); v != 1 {
		t.Errorf("REL: got %d violations, want 1", v)
	}
	// Sign flip is a REL violation even when the magnitude is close.
	if v := VerifyBound([]float32{1e-9}, []float32{-1e-9}, REL, 3); v != 1 {
		t.Errorf("REL sign flip: got %d violations, want 1", v)
	}
	// NOA normalizes by the range (here 2).
	if v := VerifyBound(orig, recon, NOA, 0.1); v != 1 {
		t.Errorf("NOA tight: got %d, want 1", v)
	}
	if v := VerifyBound(orig, recon, NOA, 0.3); v != 0 {
		t.Errorf("NOA loose: got %d, want 0", v)
	}
	// Specials.
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	if v := VerifyBound([]float32{nan, inf}, []float32{nan, inf}, ABS, 0.1); v != 0 {
		t.Errorf("specials preserved: got %d violations", v)
	}
	if v := VerifyBound([]float32{inf}, []float32{0}, ABS, 0.1); v != 1 {
		t.Errorf("lost infinity: got %d violations, want 1", v)
	}
	if v := VerifyBound([]float32{1}, []float32{1, 2}, ABS, 0.1); v != 1 {
		t.Errorf("length mismatch: got %d violations, want 1", v)
	}
}

func TestVerifyBound64(t *testing.T) {
	orig := []float64{1, -5, 0}
	recon := []float64{1.0005, -5.004, 0}
	if v := VerifyBound64(orig, recon, REL, 1e-3); v != 0 {
		t.Errorf("within bound: %d violations", v)
	}
	if v := VerifyBound64(orig, recon, REL, 1e-4); v == 0 {
		t.Error("violation not detected")
	}
}
