package pfpl

import (
	"reflect"
	"sync"
	"testing"

	"pfpl/internal/cpucomp"
	"pfpl/internal/obs"
	"pfpl/internal/server/metrics"
)

// The concurrency-bearing types below are shared across goroutines and own
// synchronization state (mutexes, sync.Once, atomics). Copying any of them
// by value forks that state — a locked copy, a re-armed Once — which `go
// vet`'s copylocks only catches when the copy is syntactically visible.
// This test pins the two disciplines that make accidental copies impossible
// in the first place: every such type must actually embed lock state
// (so copylocks has something to see), and must expose no value-receiver
// methods (a value receiver is itself a copy at every call site).
func TestLockBearingTypesArePointerDisciplined(t *testing.T) {
	guarded := []reflect.Type{
		reflect.TypeOf((*cpucomp.Pool)(nil)).Elem(),
		reflect.TypeOf((*obs.Recorder)(nil)).Elem(),
		reflect.TypeOf((*metrics.Registry)(nil)).Elem(),
		reflect.TypeOf((*metrics.Histogram)(nil)).Elem(),
	}
	for _, typ := range guarded {
		if !containsLockState(typ, nil) {
			t.Errorf("%v: no lock state found — if its synchronization moved elsewhere, update this guard list", typ)
		}
		// Methods promoted to the value type have value receivers; each call
		// through one copies the receiver, locks and all.
		if n := typ.NumMethod(); n != 0 {
			var names []string
			for i := 0; i < n; i++ {
				names = append(names, typ.Method(i).Name)
			}
			t.Errorf("%v: value-receiver methods %v copy the receiver's lock state at every call — use pointer receivers", typ, names)
		}
	}
}

// containsLockState reports whether typ transitively holds synchronization
// state: anything whose pointer form is a sync.Locker (Mutex, RWMutex),
// plus the sync and sync/atomic types that guard state without implementing
// Locker (Once, WaitGroup, atomic.Int64, ...).
func containsLockState(typ reflect.Type, seen map[reflect.Type]bool) bool {
	if seen[typ] {
		return false
	}
	if seen == nil {
		seen = make(map[reflect.Type]bool)
	}
	seen[typ] = true
	lockerType := reflect.TypeOf((*sync.Locker)(nil)).Elem()
	if reflect.PointerTo(typ).Implements(lockerType) {
		return true
	}
	switch typ.PkgPath() {
	case "sync", "sync/atomic":
		return true
	}
	switch typ.Kind() {
	case reflect.Struct:
		for i := 0; i < typ.NumField(); i++ {
			if containsLockState(typ.Field(i).Type, seen) {
				return true
			}
		}
	case reflect.Array:
		return containsLockState(typ.Elem(), seen)
	}
	return false
}
