package pfpl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// TestStreamWriterContextCancel: canceling the pipeline context mid-stream
// must surface context.Canceled from Write or Close, stop emitting frames,
// and leave every already-emitted frame decodable (frames are independent).
func TestStreamWriterContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sink bytes.Buffer
	vals := make([]float32, 2000)
	for i := range vals {
		vals[i] = float32(i)
	}
	w, err := NewWriter32(&sink, Options{Mode: ABS, Bound: 1e-3},
		StreamOptions{FrameValues: 100, Concurrency: 2, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(vals[:500]); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The cancel lands asynchronously; keep writing until it surfaces.
	var werr error
	for i := 0; i < 1000 && werr == nil; i++ {
		werr = w.Write(vals)
	}
	cerr := w.Close()
	if werr == nil {
		werr = cerr
	}
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled from Write or Close", werr)
	}
	if !errors.Is(cerr, context.Canceled) {
		t.Fatalf("Close: got %v, want context.Canceled", cerr)
	}

	// Whatever was emitted must be a prefix of whole frames: the reader
	// recovers every completed frame and then reports clean EOF.
	r := NewReader32(bytes.NewReader(sink.Bytes()), Options{})
	buf := make([]float32, 64)
	total := 0
	for {
		n, err := r.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading canceled stream's emitted prefix: %v", err)
		}
	}
	if total%100 != 0 {
		t.Fatalf("recovered %d values; want a multiple of the 100-value frame", total)
	}
}

// TestStreamWriterContextDeadline: an already-expired deadline fails the
// very first Write, before any frame is emitted.
func TestStreamWriterContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var sink bytes.Buffer
	w, err := NewWriter32(&sink, Options{Mode: ABS, Bound: 1e-3},
		StreamOptions{FrameValues: 10, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(make([]float32, 5)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Write: got %v, want context.DeadlineExceeded", err)
	}
	if err := w.Close(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close: got %v, want context.DeadlineExceeded", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("emitted %d bytes under an expired deadline; want none", sink.Len())
	}
}

// TestStreamWriterNilContext: the zero StreamOptions (nil Context) must
// behave exactly as before the context hook existed.
func TestStreamWriterNilContext(t *testing.T) {
	var sink bytes.Buffer
	w, err := NewWriter32(&sink, Options{Mode: ABS, Bound: 1e-3}, StreamOptions{FrameValues: 64})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 300)
	if err := w.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := decodeAll32(t, sink.Bytes())
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
}

func decodeAll32(t *testing.T, stream []byte) []float32 {
	t.Helper()
	r := NewReader32(bytes.NewReader(stream), Options{})
	var out []float32
	buf := make([]float32, 128)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}
