package pfpl

import "pfpl/internal/core"

// DecompressRange32 decodes count values starting at element offset from a
// single-precision stream without decompressing the rest: only the 16 kB
// chunks covering the range are decoded. This enables random access into
// large compressed arrays (e.g. extracting one variable slice from an
// in-memory compressed simulation snapshot).
func DecompressRange32(buf []byte, offset, count int) ([]float32, error) {
	buf, err := core.VerifyAndStripChecksum(buf)
	if err != nil {
		return nil, err
	}
	return core.DecompressRange32(buf, offset, count)
}

// DecompressRange64 is the double-precision counterpart of
// DecompressRange32.
func DecompressRange64(buf []byte, offset, count int) ([]float64, error) {
	buf, err := core.VerifyAndStripChecksum(buf)
	if err != nil {
		return nil, err
	}
	return core.DecompressRange64(buf, offset, count)
}
