package pfpl

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pfpl/internal/obs"
)

func traceTestData() []float32 {
	// Two chunks of smooth data plus an incompressible tail: huge random
	// exponents overflow the quantization range, forcing the raw fallback.
	n := 2*4096 + 500
	src := make([]float32, n)
	state := uint32(7)
	for i := range src {
		if i < 2*4096 {
			src[i] = float32(math.Sin(float64(i) / 30))
		} else {
			state = state*1664525 + 1013904223
			src[i] = math.Float32frombits(state&0x807FFFFF | (200+state>>24%54)<<23)
		}
	}
	return src
}

// TestTraceIdenticalBytesAllDevices pins the central property of the
// tracing layer: attaching a Tracer never changes the compressed bytes, on
// any built-in device.
func TestTraceIdenticalBytesAllDevices(t *testing.T) {
	src := traceTestData()
	pool := NewCPUPool(2)
	defer pool.Close()
	devices := []Device{Serial(), CPU(2), pool, GPU(RTX4090)}
	base, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range devices {
		rec := NewTracer(1 << 14)
		comp, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3, Device: dev, Trace: rec})
		if err != nil {
			t.Fatalf("%s: %v", dev.Name(), err)
		}
		if !bytes.Equal(comp, base) {
			t.Fatalf("%s: tracing changed the compressed bytes", dev.Name())
		}
		s := rec.Stats()
		if s.Units == 0 || s.RawUnits == 0 {
			t.Fatalf("%s: stats = %+v, want units and raw units recorded", dev.Name(), s)
		}
		if s.StageSpans[obs.StageEncode] != s.Units {
			t.Fatalf("%s: %d encode spans for %d units", dev.Name(), s.StageSpans[obs.StageEncode], s.Units)
		}

		// Traced decompression must round-trip and record decode spans.
		rec2 := NewTracer(1 << 14)
		vals, err := Decompress32(comp, nil, Options{Device: dev, Trace: rec2})
		if err != nil {
			t.Fatalf("%s: %v", dev.Name(), err)
		}
		if len(vals) != len(src) {
			t.Fatalf("%s: decoded %d values, want %d", dev.Name(), len(vals), len(src))
		}
		if rec2.Stats().StageSpans[obs.StageDecode] == 0 {
			t.Fatalf("%s: no decode spans recorded", dev.Name())
		}
	}
}

func TestWriteTraceChromeJSON(t *testing.T) {
	src := traceTestData()
	rec := NewTracer(1 << 14)
	if _, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3, Device: Serial(), Trace: rec}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec, "pfpl test"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if want := int(rec.Stats().Spans); slices != want {
		t.Fatalf("trace has %d slices, want %d recorded spans", slices, want)
	}
}

func TestChunkOutcomes(t *testing.T) {
	src := traceTestData()
	for _, checksum := range []bool{false, true} {
		comp, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3, Checksum: checksum})
		if err != nil {
			t.Fatal(err)
		}
		chunks, raws, payload, err := ChunkOutcomes(comp)
		if err != nil {
			t.Fatal(err)
		}
		info, err := Stat(comp)
		if err != nil {
			t.Fatal(err)
		}
		if chunks != info.Chunks {
			t.Fatalf("chunks = %d, want %d", chunks, info.Chunks)
		}
		if raws == 0 || raws >= chunks {
			t.Fatalf("raw chunks = %d of %d, want a strict mix", raws, chunks)
		}
		if payload <= 0 || payload >= int64(len(comp)) {
			t.Fatalf("payload bytes = %d, want within (0, %d)", payload, len(comp))
		}
	}
	if _, _, _, err := ChunkOutcomes([]byte("not a stream")); err == nil {
		t.Fatal("corrupt input accepted")
	}
}

func TestStreamWriterStatsAndTrace(t *testing.T) {
	src := traceTestData()
	rec := NewTracer(1 << 14)
	var buf bytes.Buffer
	w, err := NewWriter32(&buf, Options{Mode: ABS, Bound: 1e-3},
		StreamOptions{FrameValues: 2048, Concurrency: 3, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantFrames := int64((len(src) + 2047) / 2048)
	s := w.Stats()
	if s.Units != wantFrames {
		t.Fatalf("stats units = %d, want %d frames", s.Units, wantFrames)
	}
	if s.BytesIn != int64(len(src)*4) {
		t.Fatalf("bytes in = %d, want %d", s.BytesIn, len(src)*4)
	}
	if s.BytesOut != int64(buf.Len()) {
		t.Fatalf("bytes out = %d, want the emitted stream length %d", s.BytesOut, buf.Len())
	}
	for _, st := range []obs.Stage{obs.StageEncode, obs.StageCarryWait, obs.StageEmit} {
		if got := s.StageSpans[st]; got != wantFrames {
			t.Fatalf("stage %v spans = %d, want %d", st, got, wantFrames)
		}
	}
	// A traced writer tallies chunk outcomes, and the tally must agree with
	// what ChunkOutcomes reads back from the emitted container stream.
	if s.Chunks <= 0 {
		t.Fatalf("traced writer recorded no chunk outcomes: %+v", s)
	}
	if s.RawChunks < 0 || s.RawChunks > s.Chunks {
		t.Fatalf("raw chunk tally out of range: %d of %d", s.RawChunks, s.Chunks)
	}
	var wantChunks, wantRaw int64
	for rest := buf.Bytes(); len(rest) > 0; {
		frame, err := readFrame(bytes.NewReader(rest), nil, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		c, raw, _, err := ChunkOutcomes(frame)
		if err != nil {
			t.Fatal(err)
		}
		wantChunks += int64(c)
		wantRaw += int64(raw)
		rest = rest[framePrefix+len(frame):]
	}
	if s.Chunks != wantChunks || s.RawChunks != wantRaw {
		t.Fatalf("chunk tally = %d/%d raw, stream says %d/%d", s.Chunks, s.RawChunks, wantChunks, wantRaw)
	}
	// At least one pipeline worker lane must have registered a track.
	var sawWorker bool
	for _, name := range rec.TrackNames() {
		if strings.HasPrefix(name, "stream-w") {
			sawWorker = true
		}
	}
	if !sawWorker {
		t.Fatalf("no stream worker tracks in %v", rec.TrackNames())
	}

	// Untraced writers still aggregate stats.
	var buf2 bytes.Buffer
	w2, err := NewWriter32(&buf2, Options{Mode: ABS, Bound: 1e-3}, StreamOptions{FrameValues: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w2.Stats().Units; got != wantFrames {
		t.Fatalf("default-recorder units = %d, want %d", got, wantFrames)
	}
	if got := w2.Stats().Chunks; got != 0 {
		t.Fatalf("untraced writer paid for a chunk tally: %d chunks", got)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("tracing changed the streamed bytes")
	}
}
