package pfpl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"pfpl/internal/core"
)

// indexedStream compresses vals into an indexed framed stream.
func indexedStream32(t testing.TB, vals []float32, frame int, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter32(&buf, opts, StreamOptions{FrameValues: frame, Index: true, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func indexedStream64(t testing.TB, vals []float64, frame int, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter64(&buf, opts, StreamOptions{FrameValues: frame, Index: true, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func rampF32(n int) []float32 {
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 37.0))
	}
	return vals
}

func rampF64(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 37.0)
	}
	return vals
}

// TestIndexedPrefixIsV1Stream pins back-compat at the byte level: an
// indexed stream is the index-less stream plus a footer — the frame bytes
// are identical, so v1 readers and goldens are unaffected by the option.
func TestIndexedPrefixIsV1Stream(t *testing.T) {
	vals := rampF32(10_000)
	opts := Options{Mode: ABS, Bound: 1e-3}
	var v1 bytes.Buffer
	w, err := NewWriter32(&v1, opts, StreamOptions{FrameValues: 3000, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(vals); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	v2 := indexedStream32(t, vals, 3000, opts)
	if len(v2) <= v1.Len() {
		t.Fatalf("indexed stream (%d bytes) not longer than index-less (%d bytes)", len(v2), v1.Len())
	}
	if !bytes.Equal(v2[:v1.Len()], v1.Bytes()) {
		t.Fatal("indexed stream's frame area differs from the index-less stream")
	}
}

// TestIndexedSequentialDecode checks a v2 stream still decodes through the
// sequential reader, which must stop cleanly at the footer sentinel.
func TestIndexedSequentialDecode(t *testing.T) {
	vals := rampF32(10_000)
	data := indexedStream32(t, vals, 3000, Options{Mode: ABS, Bound: 1e-3})
	r := NewReader32(bytes.NewReader(data), Options{})
	got := make([]float32, 0, len(vals))
	buf := make([]float32, 1024)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("sequential read of indexed stream: %v", err)
		}
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range got {
		if math.Abs(float64(got[i])-float64(vals[i])) > 1e-3 {
			t.Fatalf("value %d out of bound", i)
		}
	}
}

// TestIndexedRangeMatchesSequential sweeps windows (including chunk- and
// frame-edge-aligned ones and the empty suffix) and checks Range32/64
// against a full sequential decode.
func TestIndexedRangeMatchesSequential(t *testing.T) {
	const n = 20_000
	const frame = 3251 // off both chunk sizes, forces ragged final chunks
	vals32 := rampF32(n)
	vals64 := rampF64(n)
	opts := Options{Mode: ABS, Bound: 1e-3}
	data32 := indexedStream32(t, vals32, frame, opts)
	data64 := indexedStream64(t, vals64, frame, opts)

	full32 := decodeAll32(t, data32)
	full64 := decodeAll64(t, data64)

	x32, err := OpenIndexed(bytes.NewReader(data32), int64(len(data32)))
	if err != nil {
		t.Fatal(err)
	}
	x64, err := OpenIndexed(bytes.NewReader(data64), int64(len(data64)))
	if err != nil {
		t.Fatal(err)
	}
	if x32.NumValues() != n || x64.NumValues() != n {
		t.Fatalf("NumValues = %d/%d, want %d", x32.NumValues(), x64.NumValues(), n)
	}
	if x32.Double() || !x64.Double() {
		t.Fatalf("precision flags wrong: %v/%v", x32.Double(), x64.Double())
	}

	windows := [][2]int64{
		{0, n},                    // everything
		{0, 1},                    // first value
		{n - 1, 1},                // last value
		{n, 0},                    // empty window at the end (offset==n)
		{0, 0},                    // empty window at the start
		{4096, 4096},              // f32 chunk-aligned
		{2048, 2048},              // f64 chunk-aligned
		{frame, frame},            // frame-aligned
		{frame - 1, 2},            // straddles a frame edge
		{4095, 2},                 // straddles an f32 chunk edge
		{3 * frame, 2*frame + 17}, // multiple frames
		{13, 7001},                // arbitrary
	}
	for _, w := range windows {
		off, cnt := w[0], w[1]
		got32, err := x32.Range32(off, cnt)
		if err != nil {
			t.Fatalf("Range32(%d,%d): %v", off, cnt, err)
		}
		if int64(len(got32)) != cnt {
			t.Fatalf("Range32(%d,%d) returned %d values", off, cnt, len(got32))
		}
		for i, v := range got32 {
			if math.Float32bits(v) != math.Float32bits(full32[off+int64(i)]) {
				t.Fatalf("Range32(%d,%d): value %d differs from sequential decode", off, cnt, i)
			}
		}
		got64, err := x64.Range64(off, cnt)
		if err != nil {
			t.Fatalf("Range64(%d,%d): %v", off, cnt, err)
		}
		for i, v := range got64 {
			if math.Float64bits(v) != math.Float64bits(full64[off+int64(i)]) {
				t.Fatalf("Range64(%d,%d): value %d differs from sequential decode", off, cnt, i)
			}
		}
	}

	// Out-of-range windows are rejected, overflow-safely.
	for _, w := range [][2]int64{{-1, 1}, {0, -1}, {n + 1, 0}, {n - 1, 2}, {math.MaxInt64, math.MaxInt64}} {
		if _, err := x32.Range32(w[0], w[1]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Range32(%d,%d) = %v, want ErrCorrupt", w[0], w[1], err)
		}
	}
	// Precision mismatch is rejected.
	if _, err := x32.Range64(0, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Range64 on f32 stream = %v, want ErrCorrupt", err)
	}
}

// TestIndexedRangeIsOWindow pins the tentpole property: a small window into
// a large stream reads and decodes a small, bounded amount — not the
// stream.
func TestIndexedRangeIsOWindow(t *testing.T) {
	const n = 1 << 20 // 256 chunks, 16 frames
	data := indexedStream32(t, rampF32(n), 1<<16, Options{Mode: ABS, Bound: 1e-3})
	x, err := OpenIndexed(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	base := x.Stats()
	if _, err := x.Range32(n/2, 100); err != nil {
		t.Fatal(err)
	}
	st := x.Stats()
	read := st.BytesRead - base.BytesRead
	if read > int64(len(data))/8 {
		t.Fatalf("window of 100 values read %d of %d stream bytes — not O(window)", read, len(data))
	}
	if decoded := st.ChunksDecoded - base.ChunksDecoded; decoded > 2 {
		t.Fatalf("window of 100 values decoded %d chunks, want <= 2", decoded)
	}
	if touched := st.FramesTouched - base.FramesTouched; touched != 1 {
		t.Fatalf("window of 100 values touched %d frames, want 1", touched)
	}
}

// TestIndexedChecksummedFrames checks random access over frames that carry
// their own CRC-32C trailer (Options.Checksum): the footer offsets must
// account for the 4 trailer bytes per frame.
func TestIndexedChecksummedFrames(t *testing.T) {
	const n = 10_000
	vals := rampF32(n)
	data := indexedStream32(t, vals, 3000, Options{Mode: ABS, Bound: 1e-3, Checksum: true})
	x, err := OpenIndexed(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := x.Range32(2999, 3)
	if err != nil {
		t.Fatal(err)
	}
	full := decodeAll32(t, data)
	for i, v := range got {
		if math.Float32bits(v) != math.Float32bits(full[2999+i]) {
			t.Fatalf("value %d differs", i)
		}
	}
}

// TestIndexedFrameDigest checks Frame verifies content against the index:
// valid frames round-trip, a flipped payload bit is caught.
func TestIndexedFrameDigest(t *testing.T) {
	data := indexedStream32(t, rampF32(10_000), 3000, Options{Mode: ABS, Bound: 1e-3})
	x, err := OpenIndexed(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := x.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stat(frame); err != nil {
		t.Fatalf("frame 1 is not a standalone container: %v", err)
	}

	// Flip one payload byte of frame 1 and re-open: the digest check fires.
	corrupt := bytes.Clone(data)
	e := x.Entries()[1]
	corrupt[e.Offset+4+e.Length/2] ^= 0x01
	xc, err := OpenIndexed(bytes.NewReader(corrupt), int64(len(corrupt)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xc.Frame(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Frame on corrupted payload = %v, want ErrCorrupt", err)
	}
	if _, err := xc.Frame(-1); err == nil {
		t.Fatal("Frame(-1) succeeded")
	}
}

// TestIndexedCorruptFooter drives OpenIndexed through damaged footers:
// truncated trailers, bad CRCs, index/chunk-table disagreement, and a
// stream with no footer at all.
func TestIndexedCorruptFooter(t *testing.T) {
	data := indexedStream32(t, rampF32(10_000), 3000, Options{Mode: ABS, Bound: 1e-3})

	t.Run("no-index", func(t *testing.T) {
		var v1 bytes.Buffer
		w, _ := NewWriter32(&v1, Options{Mode: ABS, Bound: 1e-3}, StreamOptions{FrameValues: 3000})
		w.Write(rampF32(5000))
		w.Close()
		if _, err := OpenIndexed(bytes.NewReader(v1.Bytes()), int64(v1.Len())); !errors.Is(err, ErrNoIndex) {
			t.Fatalf("OpenIndexed on v1 stream = %v, want ErrNoIndex", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := OpenIndexed(bytes.NewReader(nil), 0); !errors.Is(err, ErrNoIndex) {
			t.Fatalf("OpenIndexed on empty input = %v, want ErrNoIndex", err)
		}
	})
	t.Run("truncated-trailer", func(t *testing.T) {
		for cut := 1; cut <= core.IndexTrailerSize; cut += 7 {
			tr := data[:len(data)-cut]
			if _, err := OpenIndexed(bytes.NewReader(tr), int64(len(tr))); err == nil {
				t.Fatalf("OpenIndexed on stream truncated by %d bytes succeeded", cut)
			}
		}
	})
	t.Run("index-crc", func(t *testing.T) {
		c := bytes.Clone(data)
		// Flip a byte inside the index block (between last frame and trailer).
		c[len(c)-core.IndexTrailerSize-10] ^= 0x40
		if _, err := OpenIndexed(bytes.NewReader(c), int64(len(c))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corrupt index block = %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailer-offset", func(t *testing.T) {
		c := bytes.Clone(data)
		binary.LittleEndian.PutUint64(c[len(c)-core.IndexTrailerSize:], 1<<40)
		if _, err := OpenIndexed(bytes.NewReader(c), int64(len(c))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailer pointing outside stream = %v, want ErrCorrupt", err)
		}
	})
	t.Run("index-vs-chunk-table", func(t *testing.T) {
		// Corrupt the *container header* value count of frame 0 while
		// keeping the index intact: the cross-check at open must fire.
		c := bytes.Clone(data)
		binary.LittleEndian.PutUint64(c[4+24:], 12345)
		if _, err := OpenIndexed(bytes.NewReader(c), int64(len(c))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("index/chunk-table disagreement = %v, want ErrCorrupt", err)
		}
	})
}

// TestIndexedEmptyStream checks the zero-frame indexed stream round-trips.
func TestIndexedEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter32(&buf, Options{Mode: ABS, Bound: 1e-3}, StreamOptions{Index: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	x, err := OpenIndexed(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if x.NumFrames() != 0 || x.NumValues() != 0 {
		t.Fatalf("empty stream: %d frames, %d values", x.NumFrames(), x.NumValues())
	}
	if got, err := x.Range32(0, 0); err != nil || got != nil {
		t.Fatalf("empty Range32 = %v, %v", got, err)
	}
}

// TestFrameLenCapSymmetry is the regression test for the writer/reader
// frame-cap asymmetry: every frame the writer will emit must be readable on
// every platform, including 32-bit targets where int tops out at 2^31-1.
// The predicates are tested directly so no multi-gigabyte frame is
// allocated.
func TestFrameLenCapSymmetry(t *testing.T) {
	if maxWriteFrameBytes > math.MaxInt32 {
		t.Fatalf("maxWriteFrameBytes %d exceeds the 32-bit int range", maxWriteFrameBytes)
	}
	if !frameLenWritable(maxWriteFrameBytes) {
		t.Fatal("largest writable frame rejected by the writer predicate")
	}
	if !frameLenReadable(maxWriteFrameBytes) {
		t.Fatal("largest writable frame is not readable")
	}
	// The old cap: writeFrame accepted exactly 2^31 bytes, which a 32-bit
	// readFrame rejects. The writer must refuse it now.
	if frameLenWritable(maxFrameBytes) {
		t.Fatalf("writer accepts a %d-byte frame, which 32-bit readers reject", maxFrameBytes)
	}
	for _, n := range []int64{0, -1} {
		if frameLenWritable(n) || frameLenReadable(n) {
			t.Fatalf("length %d accepted", n)
		}
	}
}

// decodeAll32 lives in stream_ctx_test.go.

func decodeAll64(t testing.TB, data []byte) []float64 {
	t.Helper()
	r := NewReader64(bytes.NewReader(data), Options{})
	var out []float64
	buf := make([]float64, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}
