package main

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeF32(t *testing.T, path string, vals []float32) {
	t.Helper()
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompressDecompressStat(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f32")
	comp := filepath.Join(dir, "c.pfpl")
	out := filepath.Join(dir, "out.f32")
	vals := make([]float32, 10000)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) * 0.01))
	}
	writeF32(t, in, vals)

	if err := run("abs", 1e-3, false, false, false, in, comp, "serial", true); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := run("", 0, false, false, true, comp, "", "cpu", false); err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := run("", 0, false, true, false, comp, out, "gpu", false); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(vals)*4 {
		t.Fatalf("restored %d bytes, want %d", len(restored), len(vals)*4)
	}
	for i := range vals {
		r := math.Float32frombits(binary.LittleEndian.Uint32(restored[i*4:]))
		if d := math.Abs(float64(vals[i]) - float64(r)); d > 1e-3 {
			t.Fatalf("value %d error %g", i, d)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f32")
	writeF32(t, in, []float32{1, 2, 3})
	if err := run("bogus", 1e-3, false, false, false, in, filepath.Join(dir, "o"), "cpu", false); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run("abs", 1e-3, false, false, false, in, filepath.Join(dir, "o"), "bogus", false); err == nil {
		t.Error("bogus device accepted")
	}
	if err := run("abs", 1e-3, false, false, false, filepath.Join(dir, "missing"), filepath.Join(dir, "o"), "cpu", false); err == nil {
		t.Error("missing input accepted")
	}
	// Odd-sized input is not a float array.
	odd := filepath.Join(dir, "odd.bin")
	if err := os.WriteFile(odd, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("abs", 1e-3, false, false, false, odd, filepath.Join(dir, "o"), "cpu", false); err == nil {
		t.Error("odd-sized input accepted")
	}
	// Decompressing garbage fails cleanly.
	if err := run("abs", 1e-3, false, true, false, in, filepath.Join(dir, "o"), "cpu", false); err == nil {
		t.Error("garbage stream accepted for decompression")
	}
}

func TestRunDouble(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	comp := filepath.Join(dir, "c.pfpl")
	out := filepath.Join(dir, "out.f64")
	buf := make([]byte, 8*1000)
	for i := 0; i < 1000; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(math.Cos(float64(i)*0.01)))
	}
	if err := os.WriteFile(in, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("noa", 1e-3, true, false, false, in, comp, "cpu", true); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := run("", 0, false, true, false, comp, out, "serial", false); err != nil {
		t.Fatalf("decompress: %v", err)
	}
}
