package main

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeF32(t *testing.T, path string, vals []float32) {
	t.Helper()
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompressDecompressStat(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f32")
	comp := filepath.Join(dir, "c.pfpl")
	out := filepath.Join(dir, "out.f32")
	vals := make([]float32, 10000)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) * 0.01))
	}
	writeF32(t, in, vals)

	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: in, out: comp, device: "serial", checksum: true}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := run(cliConfig{stat: true, in: comp, device: "cpu"}); err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := run(cliConfig{decompress: true, in: comp, out: out, device: "gpu"}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(vals)*4 {
		t.Fatalf("restored %d bytes, want %d", len(restored), len(vals)*4)
	}
	for i := range vals {
		r := math.Float32frombits(binary.LittleEndian.Uint32(restored[i*4:]))
		if d := math.Abs(float64(vals[i]) - float64(r)); d > 1e-3 {
			t.Fatalf("value %d error %g", i, d)
		}
	}
}

// TestRunStream drives the framed streaming path: compress through the
// pipeline, stat auto-detects the framed layout, decompress auto-detects
// it too and reproduces the values within bound.
func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f32")
	comp := filepath.Join(dir, "c.pfpls")
	out := filepath.Join(dir, "out.f32")
	vals := make([]float32, 10000)
	for i := range vals {
		vals[i] = float32(math.Cos(float64(i) * 0.003))
	}
	writeF32(t, in, vals)

	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: in, out: comp, device: "cpu",
		stream: true, streamFrame: 1000, streamWorkers: 3}); err != nil {
		t.Fatalf("stream compress: %v", err)
	}
	data, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !isFramed(data) {
		t.Fatal("streamed output not detected as framed")
	}
	if err := run(cliConfig{stat: true, in: comp, device: "cpu"}); err != nil {
		t.Fatalf("stat framed: %v", err)
	}
	if err := run(cliConfig{decompress: true, in: comp, out: out, device: "cpu"}); err != nil {
		t.Fatalf("decompress framed: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(vals)*4 {
		t.Fatalf("restored %d bytes, want %d", len(restored), len(vals)*4)
	}
	for i := range vals {
		r := math.Float32frombits(binary.LittleEndian.Uint32(restored[i*4:]))
		if d := math.Abs(float64(vals[i]) - float64(r)); d > 1e-3 {
			t.Fatalf("value %d error %g", i, d)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f32")
	writeF32(t, in, []float32{1, 2, 3})
	o := filepath.Join(dir, "o")
	if err := run(cliConfig{mode: "bogus", bound: 1e-3, in: in, out: o, device: "cpu"}); err == nil {
		t.Error("bogus mode accepted")
	}
	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: in, out: o, device: "bogus"}); err == nil {
		t.Error("bogus device accepted")
	}
	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: filepath.Join(dir, "missing"), out: o, device: "cpu"}); err == nil {
		t.Error("missing input accepted")
	}
	// Odd-sized input is not a float array.
	odd := filepath.Join(dir, "odd.bin")
	if err := os.WriteFile(odd, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: odd, out: o, device: "cpu"}); err == nil {
		t.Error("odd-sized input accepted")
	}
	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: odd, out: o, device: "cpu", stream: true}); err == nil {
		t.Error("odd-sized input accepted by streaming path")
	}
	// Streaming with an invalid bound is rejected by the writer constructor.
	if err := run(cliConfig{mode: "abs", bound: 0, in: in, out: o, device: "cpu", stream: true}); err == nil {
		t.Error("zero bound accepted by streaming path")
	}
	// Decompressing garbage fails cleanly.
	if err := run(cliConfig{mode: "abs", bound: 1e-3, decompress: true, in: in, out: o, device: "cpu"}); err == nil {
		t.Error("garbage stream accepted for decompression")
	}
}

func TestRunDouble(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	comp := filepath.Join(dir, "c.pfpl")
	out := filepath.Join(dir, "out.f64")
	buf := make([]byte, 8*1000)
	for i := 0; i < 1000; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(math.Cos(float64(i)*0.01)))
	}
	if err := os.WriteFile(in, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cliConfig{mode: "noa", bound: 1e-3, double: true, in: in, out: comp, device: "cpu", checksum: true}); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if err := run(cliConfig{decompress: true, in: comp, out: out, device: "serial"}); err != nil {
		t.Fatalf("decompress: %v", err)
	}
}

// TestRunStreamDouble roundtrips a double-precision framed stream.
func TestRunStreamDouble(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	comp := filepath.Join(dir, "c.pfpls")
	out := filepath.Join(dir, "out.f64")
	buf := make([]byte, 8*5000)
	for i := 0; i < 5000; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(math.Sin(float64(i)*0.02)))
	}
	if err := os.WriteFile(in, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cliConfig{mode: "rel", bound: 1e-2, double: true, in: in, out: comp, device: "cpu",
		stream: true, streamFrame: 700, streamWorkers: 2, checksum: true}); err != nil {
		t.Fatalf("stream compress: %v", err)
	}
	if err := run(cliConfig{decompress: true, in: comp, out: out, device: "cpu"}); err != nil {
		t.Fatalf("decompress framed: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 8*5000 {
		t.Fatalf("restored %d bytes, want %d", len(restored), 8*5000)
	}
}

// TestRunTrace drives the -trace and -stats wiring: a GPU compress run
// exports the modelled per-SM schedule, a CPU run exports the runtime
// spans, and both are valid Chrome trace-event JSON.
func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f32")
	vals := make([]float32, 20000)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) * 0.02))
	}
	writeF32(t, in, vals)

	check := func(path, wantTrack string) {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph   string         `json:"ph"`
				Name string         `json:"name"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s is not valid trace JSON: %v", path, err)
		}
		slices, sawTrack := 0, false
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				slices++
			}
			if ev.Ph == "M" && ev.Name == "thread_name" {
				if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, wantTrack) {
					sawTrack = true
				}
			}
		}
		if slices == 0 {
			t.Fatalf("%s has no slices", path)
		}
		if !sawTrack {
			t.Fatalf("%s has no %q track", path, wantTrack)
		}
	}

	gpuTrace := filepath.Join(dir, "gpu.json")
	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: in, out: filepath.Join(dir, "g.pfpl"),
		device: "gpu", checksum: true, trace: gpuTrace, stats: true}); err != nil {
		t.Fatalf("gpu traced compress: %v", err)
	}
	check(gpuTrace, "SM ") // modelled schedule: one lane per simulated SM

	cpuTrace := filepath.Join(dir, "cpu.json")
	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: in, out: filepath.Join(dir, "c.pfpl"),
		device: "cpu", trace: cpuTrace}); err != nil {
		t.Fatalf("cpu traced compress: %v", err)
	}
	check(cpuTrace, "cpu-w") // runtime spans: one lane per pool worker

	streamTrace := filepath.Join(dir, "stream.json")
	if err := run(cliConfig{mode: "abs", bound: 1e-3, in: in, out: filepath.Join(dir, "s.pfpls"),
		device: "cpu", stream: true, streamFrame: 2000, streamWorkers: 2, trace: streamTrace}); err != nil {
		t.Fatalf("stream traced compress: %v", err)
	}
	check(streamTrace, "stream-w") // frame pipeline lanes
}
