package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// topMain implements `pfpl top <addr>`: a live terminal view of a running
// serve daemon, polled from its GET /v1/status snapshot.
//
//	pfpl top :8080
//	pfpl top -interval 1s -count 5 http://daemon:8080
//
// Each refresh redraws a one-screen summary: daemon identity and uptime,
// the bounded resources (pipeline slots, admission budget, frame cache),
// batching and tracing state, and a per-route RED table (requests, errors,
// latency percentiles). -count 1 prints once and exits, which is also the
// scripting-friendly mode.
func topMain(args []string) error {
	fs := flag.NewFlagSet("pfpl top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("count", 0, "number of refreshes before exiting (0 = until interrupted)")
	noClear := fs.Bool("no-clear", false, "append refreshes instead of redrawing the screen")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pfpl top [flags] <addr>")
	}
	url := statusURL(fs.Arg(0))

	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		st, err := fetchStatus(client, url)
		if err != nil {
			return err
		}
		if !*noClear && *count != 1 {
			fmt.Print("\x1b[2J\x1b[H") // clear + home
		}
		fmt.Print(renderStatus(st, url))
	}
	return nil
}

// statusURL normalizes a user-supplied address (":8080", "host:8080", or a
// full URL) into the status endpoint URL.
func statusURL(addr string) string {
	if !strings.Contains(addr, "://") {
		if strings.HasPrefix(addr, ":") {
			addr = "localhost" + addr
		}
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/") + "/v1/status"
}

// daemonStatus mirrors the /v1/status JSON shape (the fields top renders;
// unknown fields are ignored so old tops read new daemons).
type daemonStatus struct {
	Status string `json:"status"`
	Build  struct {
		Go       string `json:"go"`
		Revision string `json:"revision"`
	} `json:"build"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	PoolWorkers   int     `json:"pool_workers"`
	Slots         struct {
		Active int `json:"active"`
		Max    int `json:"max"`
	} `json:"slots"`
	Admission struct {
		InflightBytes  int64   `json:"inflight_bytes"`
		BudgetBytes    int64   `json:"budget_bytes"`
		DrainNsPerByte float64 `json:"drain_ns_per_byte"`
	} `json:"admission"`
	Cache struct {
		Frames     int   `json:"frames"`
		IdleFrames int   `json:"idle_frames"`
		Bytes      int64 `json:"bytes"`
	} `json:"cache"`
	Batch struct {
		PendingFields int `json:"pending_fields"`
	} `json:"batch"`
	Traces struct {
		Enabled  bool    `json:"enabled"`
		Sampling float64 `json:"sampling"`
		Stored   int     `json:"stored"`
		Recorded uint64  `json:"recorded"`
	} `json:"traces"`
	Routes map[string]struct {
		Requests     int64   `json:"requests"`
		Errors       int64   `json:"errors"`
		ClientErrors int64   `json:"client_errors"`
		P50Ms        float64 `json:"p50_ms"`
		P99Ms        float64 `json:"p99_ms"`
		MeanMs       float64 `json:"mean_ms"`
	} `json:"routes"`
}

func fetchStatus(client *http.Client, url string) (*daemonStatus, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s answered %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	st := new(daemonStatus)
	if err := json.Unmarshal(body, st); err != nil {
		return nil, fmt.Errorf("bad status payload from %s: %w", url, err)
	}
	return st, nil
}

// renderStatus formats one status snapshot as the top screen.
func renderStatus(st *daemonStatus, url string) string {
	var b strings.Builder
	rev := st.Build.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "untracked"
	}
	fmt.Fprintf(&b, "pfpl %s  %s  up %s  %s %s\n",
		st.Status, url, formatUptime(st.UptimeSeconds), st.Build.Go, rev)
	fmt.Fprintf(&b, "pool %d workers | slots %d/%d | admission %s of %s",
		st.PoolWorkers, st.Slots.Active, st.Slots.Max,
		formatBytes(st.Admission.InflightBytes), formatBytes(st.Admission.BudgetBytes))
	if st.Admission.DrainNsPerByte > 0 {
		fmt.Fprintf(&b, " | drain %.2f ns/B", st.Admission.DrainNsPerByte)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "cache %d frames (%d idle, %s) | batch %d pending",
		st.Cache.Frames, st.Cache.IdleFrames, formatBytes(st.Cache.Bytes),
		st.Batch.PendingFields)
	if st.Traces.Enabled {
		fmt.Fprintf(&b, " | traces %d/%d kept (sampling %g)",
			st.Traces.Stored, st.Traces.Recorded, st.Traces.Sampling)
	} else {
		b.WriteString(" | tracing off")
	}
	b.WriteString("\n\n")

	if len(st.Routes) == 0 {
		b.WriteString("no requests yet\n")
		return b.String()
	}
	names := make([]string, 0, len(st.Routes))
	for name := range st.Routes {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, rj := st.Routes[names[i]], st.Routes[names[j]]
		if ri.Requests != rj.Requests {
			return ri.Requests > rj.Requests
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(&b, "%-12s %10s %8s %8s %10s %10s %10s\n",
		"ROUTE", "REQUESTS", "5XX", "4XX", "P50", "P99", "MEAN")
	for _, name := range names {
		r := st.Routes[name]
		fmt.Fprintf(&b, "%-12s %10d %8d %8d %10s %10s %10s\n",
			name, r.Requests, r.Errors, r.ClientErrors,
			formatMs(r.P50Ms), formatMs(r.P99Ms), formatMs(r.MeanMs))
	}
	return b.String()
}

func formatUptime(secs float64) string {
	d := time.Duration(secs * float64(time.Second))
	switch {
	case d >= 24*time.Hour:
		return fmt.Sprintf("%dd%dh", int(d.Hours())/24, int(d.Hours())%24)
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	}
	return fmt.Sprintf("%ds", int(d.Seconds()))
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func formatMs(ms float64) string {
	switch {
	case ms <= 0:
		return "-"
	case ms < 1:
		return fmt.Sprintf("%.0fµs", ms*1000)
	case ms < 1000:
		return fmt.Sprintf("%.1fms", ms)
	}
	return fmt.Sprintf("%.2fs", ms/1000)
}
