package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	bad := []string{
		"", ":", "5", "5:", ":5", "a:b", "1:b", "a:2",
		"-1:5", "1:-5", "1.5:2", "1:2:3", " 1:2", "1: 2",
		"9999999999999999999999:1", "1:9999999999999999999999",
	}
	for _, s := range bad {
		if _, _, err := parseRange(s); err == nil {
			t.Errorf("parseRange(%q): want error, got none", s)
		} else if !strings.Contains(err.Error(), "OFFSET:COUNT") {
			t.Errorf("parseRange(%q): error %q does not explain the format", s, err)
		}
	}
	good := []struct {
		in       string
		off, cnt int64
	}{
		{"0:0", 0, 0},
		{"0:10", 0, 10},
		{"123:456", 123, 456},
	}
	for _, tc := range good {
		off, cnt, err := parseRange(tc.in)
		if err != nil {
			t.Errorf("parseRange(%q): unexpected error %v", tc.in, err)
			continue
		}
		if off != tc.off || cnt != tc.cnt {
			t.Errorf("parseRange(%q) = (%d, %d), want (%d, %d)", tc.in, off, cnt, tc.off, tc.cnt)
		}
	}
}

// buildStream compresses a small ramp as a framed stream, with or without
// the footer index, and returns the compressed file's path.
func buildStream(t *testing.T, dir string, indexed bool) string {
	t.Helper()
	in := filepath.Join(dir, "in.f32")
	vals := make([]float32, 5000)
	for i := range vals {
		vals[i] = float32(i) * 0.25
	}
	writeF32(t, in, vals)
	comp := filepath.Join(dir, "c.pfpls")
	cfg := cliConfig{mode: "abs", bound: 1e-3, in: in, out: comp,
		device: "cpu", stream: true, index: indexed}
	if err := run(cfg); err != nil {
		t.Fatalf("stream compress (indexed=%v): %v", indexed, err)
	}
	return comp
}

func TestRangeFlagErrors(t *testing.T) {
	dir := t.TempDir()
	comp := buildStream(t, dir, true)
	out := filepath.Join(dir, "out.f32")

	// A malformed -range spec must fail before any decoding happens.
	cfg := cliConfig{decompress: true, rng: "nonsense", in: comp, out: out, device: "cpu"}
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "OFFSET:COUNT") {
		t.Errorf("malformed -range: got %v, want OFFSET:COUNT complaint", err)
	}

	// A well-formed -range on an index-less framed stream must point the
	// user at -index rather than silently decoding the whole stream.
	noIdx := buildStream(t, t.TempDir(), false)
	cfg = cliConfig{decompress: true, rng: "0:16", in: noIdx, out: out, device: "cpu"}
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "-index") {
		t.Errorf("-range on index-less stream: got %v, want a pointer at -index", err)
	}

	// The happy path through the same flags still works.
	cfg = cliConfig{decompress: true, rng: "100:16", in: comp, out: out, device: "cpu"}
	if err := run(cfg); err != nil {
		t.Fatalf("-range on indexed stream: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16*4 {
		t.Errorf("-range 100:16 wrote %d bytes, want %d", len(got), 16*4)
	}
}

// Decompressing a whole indexed stream must skip the footer cleanly: the
// index rides after the last frame, where a naive sequential reader would
// try to parse it as another frame.
func TestDecompressIndexedStreamSequentially(t *testing.T) {
	dir := t.TempDir()
	comp := buildStream(t, dir, true)
	out := filepath.Join(dir, "out.f32")
	cfg := cliConfig{decompress: true, in: comp, out: out, device: "cpu"}
	if err := run(cfg); err != nil {
		t.Fatalf("sequential decompress of indexed stream: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000*4 {
		t.Errorf("decoded %d bytes, want %d", len(got), 5000*4)
	}
}

func TestStatTruncatedFooter(t *testing.T) {
	dir := t.TempDir()
	comp := buildStream(t, dir, true)
	data, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the trailer: the stream still looks framed and the
	// frames themselves are intact, but the footer index can no longer be
	// opened. -stat must report that instead of panicking or succeeding.
	for _, drop := range []int{1, 8, 23} {
		trunc := filepath.Join(dir, "trunc.pfpls")
		if err := os.WriteFile(trunc, data[:len(data)-drop], 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := cliConfig{stat: true, in: trunc, device: "cpu"}
		if err := run(cfg); err == nil {
			t.Errorf("-stat with %d trailer bytes missing: want error, got none", drop)
		} else if !strings.Contains(err.Error(), "framed stream") {
			t.Errorf("-stat with %d trailer bytes missing: error %q does not name the framed stream", drop, err)
		}
	}
}
