package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pfpl/internal/server"
)

func TestStatusURL(t *testing.T) {
	cases := map[string]string{
		":8080":                   "http://localhost:8080/v1/status",
		"daemon:9090":             "http://daemon:9090/v1/status",
		"http://daemon:9090":      "http://daemon:9090/v1/status",
		"https://daemon.example/": "https://daemon.example/v1/status",
	}
	for in, want := range cases {
		if got := statusURL(in); got != want {
			t.Errorf("statusURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTopAgainstLiveServer polls a real server.Server's /v1/status and
// checks the rendered screen carries the rollups an operator reads.
func TestTopAgainstLiveServer(t *testing.T) {
	s := server.New(server.Config{Workers: 2, TraceSample: 1})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Drive one request so a RED row exists.
	body := strings.NewReader(string(make([]byte, 4096)))
	resp, err := http.Post(ts.URL+"/v1/compress?mode=abs&bound=1e-3", "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %s", resp.Status)
	}

	st, err := fetchStatus(http.DefaultClient, statusURL(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	screen := renderStatus(st, ts.URL)
	for _, want := range []string{"pfpl ok", "pool 2 workers", "ROUTE", "compress", "traces"} {
		if !strings.Contains(screen, want) {
			t.Fatalf("rendered screen missing %q:\n%s", want, screen)
		}
	}
	if st.Routes["compress"].Requests != 1 {
		t.Fatalf("compress requests = %d, want 1", st.Routes["compress"].Requests)
	}

	// One-shot mode exits cleanly against the live daemon.
	if err := topMain([]string{"-count", "1", ts.URL}); err != nil {
		t.Fatalf("topMain: %v", err)
	}

	// A down daemon is an error, not a hang or a zero screen.
	ts.Close()
	if err := topMain([]string{"-count", "1", ts.URL}); err == nil {
		t.Fatal("topMain against a closed server must error")
	}
}

func TestTopFormatHelpers(t *testing.T) {
	if got := formatUptime(59); got != "59s" {
		t.Errorf("formatUptime(59) = %q", got)
	}
	if got := formatUptime(3600*26 + 120); got != "1d2h" {
		t.Errorf("formatUptime(26h) = %q", got)
	}
	if got := formatBytes(256 << 20); got != "256.0MiB" {
		t.Errorf("formatBytes = %q", got)
	}
	if got := formatMs(0); got != "-" {
		t.Errorf("formatMs(0) = %q", got)
	}
	if got := formatMs(0.5); got != "500µs" {
		t.Errorf("formatMs(0.5) = %q", got)
	}
}
