package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pfpl/internal/server"
)

// serveMain runs the HTTP compression service:
//
//	pfpl serve -addr :8080 -max-inflight-bytes 268435456
//
// It serves POST /v1/compress, /v1/decompress, and /v1/batch (streamed
// framed format), the /v1/objects store, GET /healthz, GET /metrics,
// GET /v1/status (the operator snapshot `pfpl top` renders), and
// GET /debug/traces (sampled request traces; -trace-sample, -trace-slow,
// -trace-ring control what is kept). It drains gracefully on
// SIGTERM/SIGINT: the listener closes, healthz flips to 503, and
// in-flight requests get -drain-timeout to finish.
func serveMain(args []string) error {
	fs := flag.NewFlagSet("pfpl serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "compression pool size (0 = one per CPU)")
	budget := fs.Int64("max-inflight-bytes", server.DefaultMaxInflightBytes,
		"in-flight byte budget; saturated requests get 429 + Retry-After")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrently active request pipelines (0 = 2x CPUs)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline (0 = none)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight requests")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	quiet := fs.Bool("quiet", false, "disable per-request logging")
	batchFields := fs.Int("batch-max-fields", 0, "flush a /v1/batch coalescing window at this many requests (0 = default)")
	batchBytes := fs.Int64("batch-max-bytes", 0, "flush a /v1/batch window at this many summed raw bytes (0 = default)")
	batchLinger := fs.Duration("batch-linger", 0, "how long the first /v1/batch request waits for company (0 = default; negative disables coalescing)")
	traceSample := fs.Float64("trace-sample", 0.01, "fraction of requests recording a full trace into /debug/traces (0 disables tracing)")
	traceSlow := fs.Duration("trace-slow", 0, "also retain any request slower than this, sampled or not (0 = off)")
	traceRing := fs.Int("trace-ring", 0, "retained traces behind /debug/traces (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := server.New(server.Config{
		Workers:          *workers,
		MaxInflightBytes: *budget,
		MaxConcurrent:    *maxConcurrent,
		RequestTimeout:   *reqTimeout,
		EnablePprof:      *enablePprof,
		Logger:           logger,
		BatchMaxFields:   *batchFields,
		BatchMaxBytes:    *batchBytes,
		BatchLinger:      *batchLinger,
		TraceSample:      *traceSample,
		TraceSlow:        *traceSlow,
		TraceRing:        *traceRing,
	})
	defer srv.Close()
	srv.Metrics().Publish("pfpl")

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pfpl serve: listening on %s (budget %d bytes)\n", *addr, srv.Admission().Capacity())

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	srv.SetDraining()
	fmt.Fprintln(os.Stderr, "pfpl serve: draining in-flight requests")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("drain incomplete after %v: %w", *drainTimeout, err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "pfpl serve: drained, bye")
	return nil
}
