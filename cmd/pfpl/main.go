// Command pfpl compresses and decompresses raw binary floating-point files
// with the PFPL algorithm.
//
// Usage:
//
//	pfpl -mode abs -bound 1e-3 -in data.f32 -out data.pfpl
//	pfpl -stream -stream-workers 4 -in data.f32 -out data.pfpls
//	pfpl -d -in data.pfpl -out restored.f32
//	pfpl -stat -in data.pfpl
//	pfpl serve -addr :8080
//	pfpl top :8080
//
// Input files for compression are raw little-endian float32 arrays (or
// float64 with -double). The device flag selects the executor: serial, cpu,
// or gpu (the simulated RTX 4090).
//
// -stream writes a framed stream (independent length-prefixed frames)
// through the concurrent frame pipeline instead of one monolithic
// container; -stream-frame sets the values per frame and -stream-workers
// the number of frames compressed in flight. Framed streams are detected
// automatically by -d and -stat. Adding -index appends a seekable footer
// index (frame offsets, value counts, SHA-256 digests) that -d -range
// OFFSET:COUNT uses to decode a value window touching only the covering
// frames and chunks.
//
// The serve subcommand runs the bounded-concurrency HTTP service (see
// internal/server); top polls a running daemon's GET /v1/status into a
// live per-route RED view. -metrics prints the batch run's
// instrumentation — the same registry shape the service exposes at
// /metrics — to stderr.
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"pfpl"
	"pfpl/internal/core"
	"pfpl/internal/gpusim"
	"pfpl/internal/server/metrics"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serveMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pfpl serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := topMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pfpl top:", err)
			os.Exit(1)
		}
		return
	}
	var cfg cliConfig
	flag.StringVar(&cfg.mode, "mode", "abs", "error-bound type: abs, rel, or noa")
	flag.Float64Var(&cfg.bound, "bound", 1e-3, "error bound")
	flag.BoolVar(&cfg.double, "double", false, "treat input as float64 (compression only)")
	flag.BoolVar(&cfg.decompress, "d", false, "decompress instead of compress")
	flag.BoolVar(&cfg.stat, "stat", false, "print stream info and exit")
	flag.StringVar(&cfg.in, "in", "", "input file (required)")
	flag.StringVar(&cfg.out, "out", "", "output file (required unless -stat)")
	flag.StringVar(&cfg.device, "device", "cpu", "executor: serial, cpu, or gpu")
	flag.BoolVar(&cfg.checksum, "sum", false, "append/verify a CRC-32C integrity trailer")
	flag.BoolVar(&cfg.stream, "stream", false, "compress as a framed stream through the frame pipeline")
	flag.IntVar(&cfg.streamFrame, "stream-frame", 0, "values per stream frame (0 = default)")
	flag.IntVar(&cfg.streamWorkers, "stream-workers", 0, "frames compressed concurrently (0 = one per CPU)")
	flag.BoolVar(&cfg.index, "index", false, "with -stream: append a seekable footer index to the stream")
	flag.StringVar(&cfg.rng, "range", "", "with -d: decode only OFFSET:COUNT values (element units) via random access")
	var withMetrics bool
	flag.BoolVar(&withMetrics, "metrics", false, "print a JSON metrics summary of the run to stderr")
	flag.StringVar(&cfg.trace, "trace", "", "write a Chrome trace-event JSON timeline of the run to this file (Perfetto-viewable); with -device gpu this is the modelled per-SM schedule")
	flag.BoolVar(&cfg.stats, "stats", false, "print a per-stage span breakdown of the run to stderr")
	flag.Parse()
	if cfg.in == "" || (cfg.out == "" && !cfg.stat) {
		flag.Usage()
		os.Exit(2)
	}
	if withMetrics {
		cfg.reg = metrics.New()
	}
	err := run(cfg)
	if cfg.reg != nil {
		fmt.Fprint(os.Stderr, cfg.reg.String())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfpl:", err)
		os.Exit(1)
	}
}

type cliConfig struct {
	mode          string
	bound         float64
	double        bool
	decompress    bool
	stat          bool
	in, out       string
	device        string
	checksum      bool
	stream        bool
	streamFrame   int
	streamWorkers int
	index         bool
	rng           string
	reg           *metrics.Registry
	trace         string
	stats         bool
	tracer        *pfpl.Tracer
}

// recordBatch feeds a batch run's numbers into the same metric names the
// HTTP service exposes, so one dashboard reads both paths.
func recordBatch(reg *metrics.Registry, op string, bytesIn, bytesOut int, dt time.Duration) {
	if reg == nil {
		return
	}
	reg.Counter("requests." + op + ".cli.ok").Add(1)
	reg.Counter("bytes.in").Add(int64(bytesIn))
	reg.Counter("bytes.out").Add(int64(bytesOut))
	reg.Histogram("latency_ns." + op).Observe(float64(dt.Nanoseconds()))
	if op == "compress" && bytesOut > 0 {
		reg.Histogram("ratio.compress").Observe(float64(bytesIn) / float64(bytesOut))
	}
}

func pickDevice(name string) (pfpl.Device, error) {
	switch strings.ToLower(name) {
	case "serial":
		return pfpl.Serial(), nil
	case "cpu", "":
		return pfpl.CPU(0), nil
	case "gpu":
		return pfpl.GPU(pfpl.RTX4090), nil
	}
	return nil, fmt.Errorf("unknown device %q (want serial, cpu, or gpu)", name)
}

func pickMode(name string) (pfpl.Mode, error) {
	switch strings.ToLower(name) {
	case "abs":
		return pfpl.ABS, nil
	case "rel":
		return pfpl.REL, nil
	case "noa":
		return pfpl.NOA, nil
	}
	return pfpl.ABS, fmt.Errorf("unknown mode %q (want abs, rel, or noa)", name)
}

// framePrefix is the streaming frame length-prefix size.
const framePrefix = 4

// isFramed reports whether data is a framed stream: the container magic
// "PFPL" appears after a 4-byte length prefix instead of at offset 0.
func isFramed(data []byte) bool {
	return len(data) >= framePrefix+4 &&
		string(data[:4]) != "PFPL" &&
		string(data[framePrefix:framePrefix+4]) == "PFPL"
}

func run(cfg cliConfig) error {
	dev, err := pickDevice(cfg.device)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(cfg.in)
	if err != nil {
		return err
	}
	if cfg.trace != "" || cfg.stats {
		cfg.tracer = pfpl.NewTracer(1 << 18)
	}

	if cfg.stat {
		if isFramed(data) {
			return statStream(data)
		}
		info, err := pfpl.Stat(data)
		if err != nil {
			return err
		}
		chunks, rawChunks, payload, err := pfpl.ChunkOutcomes(data)
		if err != nil {
			return err
		}
		fmt.Printf("mode=%v bound=%g double=%v raw=%v count=%d chunks=%d raw_chunks=%d payload_bytes=%d checksum=%v\n",
			info.Mode, info.Bound, info.Double, info.Raw, info.Count, chunks, rawChunks, payload, info.Checksummed)
		if info.Mode == pfpl.NOA {
			fmt.Printf("noa value range=%g\n", info.NOARange)
		}
		return nil
	}

	if cfg.decompress {
		if cfg.rng != "" {
			return decompressRange(cfg, data)
		}
		if isFramed(data) {
			return decompressStream(cfg, dev, data)
		}
		info, err := pfpl.Stat(data)
		if err != nil {
			return err
		}
		opts := pfpl.Options{Device: dev, Trace: cfg.tracer}
		t0 := time.Now()
		var outBytes []byte
		if info.Double {
			vals, err := pfpl.Decompress64(data, nil, opts)
			if err != nil {
				return err
			}
			outBytes = f64Bytes(vals)
		} else {
			vals, err := pfpl.Decompress32(data, nil, opts)
			if err != nil {
				return err
			}
			outBytes = f32Bytes(vals)
		}
		dt := time.Since(t0)
		if err := os.WriteFile(cfg.out, outBytes, 0o644); err != nil {
			return err
		}
		recordBatch(cfg.reg, "decompress", len(data), len(outBytes), dt)
		fmt.Printf("decompressed %d -> %d bytes in %v (%.2f GB/s, %s)\n",
			len(data), len(outBytes), dt, float64(len(outBytes))/dt.Seconds()/1e9, dev.Name())
		return finishObserve(cfg, nil)
	}

	mode, err := pickMode(cfg.mode)
	if err != nil {
		return err
	}
	if cfg.stream {
		return compressStream(cfg, mode, data)
	}
	var comp []byte
	var rawLen int
	t0 := time.Now()
	if cfg.double {
		vals, err := f64Vals(data)
		if err != nil {
			return err
		}
		rawLen = len(data)
		comp, err = pfpl.Compress64(vals, pfpl.Options{Mode: mode, Bound: cfg.bound, Device: dev, Checksum: cfg.checksum, Trace: cfg.tracer})
		if err != nil {
			return err
		}
	} else {
		vals, err := f32Vals(data)
		if err != nil {
			return err
		}
		rawLen = len(data)
		comp, err = pfpl.Compress32(vals, pfpl.Options{Mode: mode, Bound: cfg.bound, Device: dev, Checksum: cfg.checksum, Trace: cfg.tracer})
		if err != nil {
			return err
		}
	}
	dt := time.Since(t0)
	if err := os.WriteFile(cfg.out, comp, 0o644); err != nil {
		return err
	}
	recordBatch(cfg.reg, "compress", rawLen, len(comp), dt)
	fmt.Printf("compressed %d -> %d bytes (ratio %.2f) in %v (%.2f GB/s, %s)\n",
		rawLen, len(comp), float64(rawLen)/float64(len(comp)), dt,
		float64(rawLen)/dt.Seconds()/1e9, dev.Name())
	return finishObserve(cfg, comp)
}

// finishObserve emits the run's observability outputs: the -stats stage
// breakdown to stderr, and the -trace Chrome trace-event file. For a GPU
// compress run the trace is the modelled per-SM schedule (one lane per
// simulated SM, derived from the device's roofline model and the actual
// chunk sizes of comp); every other run exports the runtime spans the
// executors recorded.
func finishObserve(cfg cliConfig, comp []byte) error {
	if cfg.tracer == nil {
		return nil
	}
	if cfg.stats {
		fmt.Fprint(os.Stderr, cfg.tracer.Stats().String())
	}
	if cfg.trace == "" {
		return nil
	}
	f, err := os.Create(cfg.trace)
	if err != nil {
		return err
	}
	defer f.Close()
	if comp != nil && strings.ToLower(cfg.device) == "gpu" {
		body, err := core.VerifyAndStripChecksum(comp)
		if err != nil {
			return err
		}
		tl, err := gpusim.ModelTimeline(gpusim.RTX4090, body)
		if err != nil {
			return err
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			return err
		}
	} else if err := pfpl.WriteTrace(f, cfg.tracer, "pfpl "+cfg.device); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", cfg.trace)
	return f.Close()
}

// compressStream writes data through the pipelined streaming writer. The
// explicit device is respected only when the user picked a non-default
// one; with the default "cpu" the pipeline's own policy applies (serial
// per frame under a multi-worker pipeline). The bytes are identical either
// way.
func compressStream(cfg cliConfig, mode pfpl.Mode, data []byte) error {
	opts := pfpl.Options{Mode: mode, Bound: cfg.bound, Checksum: cfg.checksum}
	if strings.ToLower(cfg.device) != "cpu" && cfg.device != "" {
		dev, err := pickDevice(cfg.device)
		if err != nil {
			return err
		}
		opts.Device = dev
	}
	sopts := pfpl.StreamOptions{Concurrency: cfg.streamWorkers, FrameValues: cfg.streamFrame, Index: cfg.index, Trace: cfg.tracer}
	var sink bytes.Buffer
	t0 := time.Now()
	if cfg.double {
		vals, err := f64Vals(data)
		if err != nil {
			return err
		}
		w, err := pfpl.NewWriter64(&sink, opts, sopts)
		if err != nil {
			return err
		}
		if err := w.Write(vals); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	} else {
		vals, err := f32Vals(data)
		if err != nil {
			return err
		}
		w, err := pfpl.NewWriter32(&sink, opts, sopts)
		if err != nil {
			return err
		}
		if err := w.Write(vals); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	dt := time.Since(t0)
	if err := os.WriteFile(cfg.out, sink.Bytes(), 0o644); err != nil {
		return err
	}
	recordBatch(cfg.reg, "compress", len(data), sink.Len(), dt)
	fmt.Printf("streamed %d -> %d bytes (ratio %.2f) in %v (%.2f GB/s, %d workers)\n",
		len(data), sink.Len(), float64(len(data))/float64(sink.Len()), dt,
		float64(len(data))/dt.Seconds()/1e9, cfg.streamWorkers)
	return finishObserve(cfg, nil)
}

// decompressStream decodes a framed stream with the read-ahead reader,
// auto-detecting the precision from the first frame's container header.
func decompressStream(cfg cliConfig, dev pfpl.Device, data []byte) error {
	info, err := pfpl.Stat(data[framePrefix:])
	if err != nil {
		return err
	}
	opts := pfpl.Options{Device: dev, Trace: cfg.tracer}
	t0 := time.Now()
	var outBytes []byte
	if info.Double {
		r := pfpl.NewReader64(bytes.NewReader(data), opts)
		var vals []float64
		buf := make([]float64, 1<<16)
		for {
			n, err := r.Read(buf)
			vals = append(vals, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		outBytes = f64Bytes(vals)
	} else {
		r := pfpl.NewReader32(bytes.NewReader(data), opts)
		var vals []float32
		buf := make([]float32, 1<<16)
		for {
			n, err := r.Read(buf)
			vals = append(vals, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		outBytes = f32Bytes(vals)
	}
	dt := time.Since(t0)
	if err := os.WriteFile(cfg.out, outBytes, 0o644); err != nil {
		return err
	}
	recordBatch(cfg.reg, "decompress", len(data), len(outBytes), dt)
	fmt.Printf("decompressed framed stream %d -> %d bytes in %v (%.2f GB/s)\n",
		len(data), len(outBytes), dt, float64(len(outBytes))/dt.Seconds()/1e9)
	return finishObserve(cfg, nil)
}

// parseRange parses the -range flag ("OFFSET:COUNT", element units).
func parseRange(s string) (offset, count int64, err error) {
	o, c, ok := strings.Cut(s, ":")
	if ok {
		offset, err = strconv.ParseInt(o, 10, 64)
		if err == nil {
			count, err = strconv.ParseInt(c, 10, 64)
		}
	}
	if !ok || err != nil || offset < 0 || count < 0 {
		return 0, 0, fmt.Errorf("bad -range %q (want OFFSET:COUNT, both non-negative)", s)
	}
	return offset, count, nil
}

// decompressRange decodes only the requested value window. For an indexed
// framed stream it opens the footer index and seeks to the covering frames;
// for a monolithic container it decodes the covering chunks. Index-less
// framed streams are rejected with a pointer at -index, rather than
// silently decoding everything.
func decompressRange(cfg cliConfig, data []byte) error {
	offset, count, err := parseRange(cfg.rng)
	if err != nil {
		return err
	}
	t0 := time.Now()
	var outBytes []byte
	if isFramed(data) {
		x, err := pfpl.OpenIndexed(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if errors.Is(err, pfpl.ErrNoIndex) {
				return fmt.Errorf("framed stream has no footer index (recompress with -stream -index): %w", err)
			}
			return err
		}
		if x.Double() {
			vals, err := x.Range64(offset, count)
			if err != nil {
				return err
			}
			outBytes = f64Bytes(vals)
		} else {
			vals, err := x.Range32(offset, count)
			if err != nil {
				return err
			}
			outBytes = f32Bytes(vals)
		}
		dt := time.Since(t0)
		st := x.Stats()
		if err := os.WriteFile(cfg.out, outBytes, 0o644); err != nil {
			return err
		}
		recordBatch(cfg.reg, "decompress", len(data), len(outBytes), dt)
		fmt.Printf("range [%d:%d) -> %d bytes in %v (read %d of %d stream bytes, %d frames, %d chunks)\n",
			offset, offset+count, len(outBytes), dt, st.BytesRead, len(data), st.FramesTouched, st.ChunksDecoded)
		return nil
	}
	info, err := pfpl.Stat(data)
	if err != nil {
		return err
	}
	if offset > int64(math.MaxInt) || count > int64(math.MaxInt) {
		return fmt.Errorf("-range %q out of addressable range", cfg.rng)
	}
	if info.Double {
		vals, err := pfpl.DecompressRange64(data, int(offset), int(count))
		if err != nil {
			return err
		}
		outBytes = f64Bytes(vals)
	} else {
		vals, err := pfpl.DecompressRange32(data, int(offset), int(count))
		if err != nil {
			return err
		}
		outBytes = f32Bytes(vals)
	}
	dt := time.Since(t0)
	if err := os.WriteFile(cfg.out, outBytes, 0o644); err != nil {
		return err
	}
	recordBatch(cfg.reg, "decompress", len(data), len(outBytes), dt)
	fmt.Printf("range [%d:%d) -> %d bytes in %v\n", offset, offset+count, len(outBytes), dt)
	return nil
}

// statStream walks the frames of a framed stream and prints a summary,
// including the chunk outcomes (raw-fallback counts) summed across frames.
// A footer index, if present, ends the walk; the summary reports it.
func statStream(data []byte) error {
	frames := 0
	var values uint64
	var chunks, rawChunks int
	var payload int64
	var first pfpl.Info
	indexed := false
	for off := 0; off+framePrefix <= len(data); {
		word := binary.LittleEndian.Uint32(data[off:])
		if word == core.IndexMagicWord {
			// The footer index begins here; verify it by opening it.
			if _, err := pfpl.OpenIndexed(bytes.NewReader(data), int64(len(data))); err != nil {
				return fmt.Errorf("framed stream: footer index at byte %d: %w", off, err)
			}
			indexed = true
			break
		}
		n := int64(word)
		body := int64(off) + framePrefix
		if n <= 0 || body+n > int64(len(data)) {
			return fmt.Errorf("framed stream: frame %d at byte %d truncated or corrupt", frames, off)
		}
		info, err := pfpl.Stat(data[body : body+n])
		if err != nil {
			return fmt.Errorf("framed stream: frame %d at byte %d: %w", frames, off, err)
		}
		fc, fr, fp, err := pfpl.ChunkOutcomes(data[body : body+n])
		if err != nil {
			return fmt.Errorf("framed stream: frame %d at byte %d: %w", frames, off, err)
		}
		chunks += fc
		rawChunks += fr
		payload += fp
		if frames == 0 {
			first = info
		}
		frames++
		values += uint64(info.Count)
		off = int(body + n)
	}
	fmt.Printf("framed stream: frames=%d values=%d chunks=%d raw_chunks=%d payload_bytes=%d mode=%v bound=%g double=%v checksum=%v indexed=%v\n",
		frames, values, chunks, rawChunks, payload, first.Mode, first.Bound, first.Double, first.Checksummed, indexed)
	return nil
}

func f32Vals(data []byte) ([]float32, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("input size %d is not a multiple of 4", len(data))
	}
	vals := make([]float32, len(data)/4)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return vals, nil
}

func f64Vals(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("input size %d is not a multiple of 8", len(data))
	}
	vals := make([]float64, len(data)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return vals, nil
}

func f32Bytes(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

func f64Bytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}
