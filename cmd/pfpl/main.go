// Command pfpl compresses and decompresses raw binary floating-point files
// with the PFPL algorithm.
//
// Usage:
//
//	pfpl -mode abs -bound 1e-3 -in data.f32 -out data.pfpl
//	pfpl -d -in data.pfpl -out restored.f32
//	pfpl -stat -in data.pfpl
//
// Input files for compression are raw little-endian float32 arrays (or
// float64 with -double). The device flag selects the executor: serial, cpu,
// or gpu (the simulated RTX 4090).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"pfpl"
)

func main() {
	var (
		mode       = flag.String("mode", "abs", "error-bound type: abs, rel, or noa")
		bound      = flag.Float64("bound", 1e-3, "error bound")
		double     = flag.Bool("double", false, "treat input as float64 (compression only)")
		decompress = flag.Bool("d", false, "decompress instead of compress")
		stat       = flag.Bool("stat", false, "print stream info and exit")
		in         = flag.String("in", "", "input file (required)")
		out        = flag.String("out", "", "output file (required unless -stat)")
		device     = flag.String("device", "cpu", "executor: serial, cpu, or gpu")
		checksum   = flag.Bool("sum", false, "append/verify a CRC-32C integrity trailer")
	)
	flag.Parse()
	if *in == "" || (*out == "" && !*stat) {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*mode, *bound, *double, *decompress, *stat, *in, *out, *device, *checksum); err != nil {
		fmt.Fprintln(os.Stderr, "pfpl:", err)
		os.Exit(1)
	}
}

func pickDevice(name string) (pfpl.Device, error) {
	switch strings.ToLower(name) {
	case "serial":
		return pfpl.Serial(), nil
	case "cpu", "":
		return pfpl.CPU(0), nil
	case "gpu":
		return pfpl.GPU(pfpl.RTX4090), nil
	}
	return nil, fmt.Errorf("unknown device %q (want serial, cpu, or gpu)", name)
}

func pickMode(name string) (pfpl.Mode, error) {
	switch strings.ToLower(name) {
	case "abs":
		return pfpl.ABS, nil
	case "rel":
		return pfpl.REL, nil
	case "noa":
		return pfpl.NOA, nil
	}
	return pfpl.ABS, fmt.Errorf("unknown mode %q (want abs, rel, or noa)", name)
}

func run(modeName string, bound float64, double, decompress, stat bool, in, out, deviceName string, checksum bool) error {
	dev, err := pickDevice(deviceName)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}

	if stat {
		info, err := pfpl.Stat(data)
		if err != nil {
			return err
		}
		fmt.Printf("mode=%v bound=%g double=%v raw=%v count=%d chunks=%d checksum=%v\n",
			info.Mode, info.Bound, info.Double, info.Raw, info.Count, info.Chunks, info.Checksummed)
		if info.Mode == pfpl.NOA {
			fmt.Printf("noa value range=%g\n", info.NOARange)
		}
		return nil
	}

	if decompress {
		info, err := pfpl.Stat(data)
		if err != nil {
			return err
		}
		opts := pfpl.Options{Device: dev}
		t0 := time.Now()
		var outBytes []byte
		if info.Double {
			vals, err := pfpl.Decompress64(data, nil, opts)
			if err != nil {
				return err
			}
			outBytes = make([]byte, 8*len(vals))
			for i, v := range vals {
				binary.LittleEndian.PutUint64(outBytes[i*8:], math.Float64bits(v))
			}
		} else {
			vals, err := pfpl.Decompress32(data, nil, opts)
			if err != nil {
				return err
			}
			outBytes = make([]byte, 4*len(vals))
			for i, v := range vals {
				binary.LittleEndian.PutUint32(outBytes[i*4:], math.Float32bits(v))
			}
		}
		dt := time.Since(t0)
		if err := os.WriteFile(out, outBytes, 0o644); err != nil {
			return err
		}
		fmt.Printf("decompressed %d -> %d bytes in %v (%.2f GB/s, %s)\n",
			len(data), len(outBytes), dt, float64(len(outBytes))/dt.Seconds()/1e9, dev.Name())
		return nil
	}

	mode, err := pickMode(modeName)
	if err != nil {
		return err
	}
	var comp []byte
	var rawLen int
	t0 := time.Now()
	if double {
		if len(data)%8 != 0 {
			return fmt.Errorf("input size %d is not a multiple of 8", len(data))
		}
		vals := make([]float64, len(data)/8)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		rawLen = len(data)
		comp, err = pfpl.Compress64(vals, pfpl.Options{Mode: mode, Bound: bound, Device: dev, Checksum: checksum})
	} else {
		if len(data)%4 != 0 {
			return fmt.Errorf("input size %d is not a multiple of 4", len(data))
		}
		vals := make([]float32, len(data)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
		}
		rawLen = len(data)
		comp, err = pfpl.Compress32(vals, pfpl.Options{Mode: mode, Bound: bound, Device: dev, Checksum: checksum})
	}
	if err != nil {
		return err
	}
	dt := time.Since(t0)
	if err := os.WriteFile(out, comp, 0o644); err != nil {
		return err
	}
	fmt.Printf("compressed %d -> %d bytes (ratio %.2f) in %v (%.2f GB/s, %s)\n",
		rawLen, len(comp), float64(rawLen)/float64(len(comp)), dt,
		float64(rawLen)/dt.Seconds()/1e9, dev.Name())
	return nil
}
