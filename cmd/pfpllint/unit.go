package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"pfpl/internal/analyzers"
	"pfpl/internal/analyzers/analysis"
	"pfpl/internal/analyzers/load"
)

// vetConfig mirrors the JSON that cmd/go writes to <objdir>/vet.cfg for
// each package it vets (see GOROOT/src/cmd/go/internal/work/exec.go). The
// tool is invoked once per package with this file as its only argument,
// cwd set to the package directory, and must write the VetxOutput facts
// file on every successful exit — cmd/go stats it to decide whether the
// tool ran.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// unitMode analyzes one vet unit. Returns the process exit code: 0 clean,
// 2 when diagnostics were reported, or an error for operational failures.
func unitMode(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// pfpllint produces no cross-package facts, but the output file must
	// exist or cmd/go reports the tool as failed. Write it up front so
	// every early return below is a valid exit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pfpllint\n"), 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		// Facts-only run for a dependency: nothing to compute.
		return 0, nil
	}
	// go vet ships each tested package as its test-augmented variant (the
	// plain unit is never vetted separately), so the unit must be analyzed
	// even when it contains _test.go files — skipping it would silently
	// exempt the shipped code of every package that has tests. Only the
	// all-test units are out of scope: external _test packages and the
	// generated ".test" main. Diagnostics landing in _test.go files are
	// filtered after the run — test corpora legitimately use rand, wall
	// clocks, and unwrapped errors.
	if load.AllTestFiles(cfg.GoFiles) || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 1, err
		}
		files = append(files, f)
	}

	// Imports resolve from the export data cmd/go already compiled:
	// ImportMap takes the path as written in source to its canonical
	// package path (vendoring, "test shadowing"), PackageFile takes the
	// canonical path to the .a/export file on disk.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    unitSizes(compiler),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info, Sizes: tconf.Sizes}
	diags, err := analysis.Run(unit, analyzers.All())
	if err != nil {
		return 1, err
	}
	reported := 0
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		reported++
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if reported > 0 {
		return 2, nil
	}
	return 0, nil
}

// unitSizes picks the type sizes for the unit's target architecture.
// cmd/go doesn't put GOARCH in vet.cfg, but it does pass the build
// environment through, so the env var set for the `go vet` invocation is
// the right source of truth.
func unitSizes(compiler string) types.Sizes {
	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	if s := types.SizesFor(compiler, goarch); s != nil {
		return s
	}
	return types.SizesFor("gc", runtime.GOARCH)
}
