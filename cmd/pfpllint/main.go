// Command pfpllint is the repository's invariant checker: a multichecker
// bundling the five analyzers in internal/analyzers (determinism,
// intwidth, errchain, hotpath, refparity).
//
// It runs two ways:
//
//	pfpllint [packages]              # standalone, e.g. pfpllint ./...
//	go vet -vettool=$(which pfpllint) ./...
//
// Standalone mode shells out to `go list` and type-checks from source;
// vettool mode speaks cmd/go's vet protocol (one invocation per package,
// a JSON config file as the sole argument, export data for imports), so
// findings land with the same caching and package selection as go vet.
// Both honor GOARCH from the environment: GOARCH=386 analyzes the tree
// with 32-bit int sizes, which is where the intwidth analyzer's
// maxFrameBytes/frame-cap bug class actually bites.
//
// Exit status is 0 for a clean pass, 2 when any diagnostic is reported,
// and 1 for operational errors (unparseable package, bad flags).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pfpl/internal/analyzers"
	"pfpl/internal/analyzers/analysis"
	"pfpl/internal/analyzers/load"
)

// version is the string reported to cmd/go's -V=full probe. cmd/go
// requires the third field to be a non-"devel" version token it can use
// as a cache key, so bump it whenever analyzer behavior changes — stale
// vet caches would otherwise keep serving old verdicts.
const version = "v1.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes the tool before first use: `-V=full` must print an
	// identity whose final field is a cacheable version, and `-flags`
	// must dump the tool's flag set as JSON (ours is empty — analyzer
	// selection is deliberately not configurable, the invariants are not
	// optional). Both probes are answered before any other parsing.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Printf("pfpllint version %s\n", version)
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("pfpllint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pfpllint [packages]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which pfpllint) [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Analyzers (always all on):\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	rest := fs.Args()

	// cmd/go invokes the tool as `pfpllint <objdir>/vet.cfg`.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		code, err := unitMode(rest[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfpllint: %v\n", err)
		}
		return code
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(patterns)
}

func standalone(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pfpllint: %v\n", err)
		return 1
	}
	units, err := load.Targets(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pfpllint: %v\n", err)
		return 1
	}
	found := false
	for _, u := range units {
		diags, err := analysis.Run(u, analyzers.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pfpllint: %s: %v\n", u.Pkg.Path(), err)
			return 1
		}
		for _, d := range diags {
			found = true
			printDiag(cwd, u, d)
		}
	}
	if found {
		return 2
	}
	return 0
}

func printDiag(cwd string, u *analysis.Unit, d analysis.Diagnostic) {
	pos := u.Fset.Position(d.Pos)
	file := pos.Filename
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", file, pos.Line, pos.Column, d.Analyzer, d.Message)
}
