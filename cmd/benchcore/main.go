// Command benchcore measures the throughput of every PFPL lossless-stage
// kernel — word-parallel fast path and scalar reference — plus end-to-end
// compress/decompress throughput per executor, and writes the results as
// JSON in the same spirit as results/BENCH_serve.json.
//
// Usage:
//
//	go run ./cmd/benchcore [-quick] [-out results/BENCH_core.json]
//
// -quick shrinks the per-measurement budget for CI smoke passes; the
// committed results/BENCH_core.json should be regenerated with the default
// budget (see EXPERIMENTS.md).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"pfpl"
	"pfpl/internal/core"
	"pfpl/internal/core/ref"
)

// Result is one throughput measurement. Stage entries carry impl
// "fast"/"ref"; executor entries carry the executor name.
type Result struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "stage" or "executor"
	Stage      string  `json:"stage,omitempty"`
	Impl       string  `json:"impl,omitempty"`
	Executor   string  `json:"executor,omitempty"`
	Op         string  `json:"op,omitempty"`
	Precision  int     `json:"precision"`
	Dataset    string  `json:"dataset"`
	BytesPerOp int64   `json:"bytes_per_op"`
	NsPerOp    float64 `json:"ns_per_op"`
	GBPerS     float64 `json:"gb_per_s"`
}

// Speedup summarizes fast-over-reference for one stage benchmark.
type Speedup struct {
	Name        string  `json:"name"`
	FastOverRef float64 `json:"fast_over_ref"`
}

// Report is the schema of results/BENCH_core.json.
type Report struct {
	Description string    `json:"description"`
	Date        string    `json:"date"`
	GoVersion   string    `json:"go_version"`
	GOARCH      string    `json:"goarch"`
	NumCPU      int       `json:"num_cpu"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	ChunkBytes  int       `json:"chunk_bytes"`
	Budget      string    `json:"budget_per_measurement"`
	Stages      []Result  `json:"stages"`
	Executors   []Result  `json:"executors"`
	Speedups    []Speedup `json:"speedups"`
}

// measure times f repeatedly until the budget is met and returns ns/op.
func measure(budget time.Duration, f func()) float64 {
	f() // warmup
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed >= budget {
			return float64(elapsed.Nanoseconds()) / float64(iters)
		}
		if elapsed <= 0 {
			iters *= 64
			continue
		}
		// Scale to overshoot the budget by ~25%.
		next := int(float64(iters) * 1.25 * float64(budget) / float64(elapsed))
		if next <= iters {
			next = iters * 2
		}
		iters = next
	}
}

func gbps(bytesPerOp int64, nsPerOp float64) float64 {
	return float64(bytesPerOp) / nsPerOp // bytes/ns == GB/s
}

func stageResult(name, stage, impl string, precision int, dataset string, bytesPerOp int64, budget time.Duration, f func()) Result {
	ns := measure(budget, f)
	r := Result{
		Name: name, Kind: "stage", Stage: stage, Impl: impl,
		Precision: precision, Dataset: dataset,
		BytesPerOp: bytesPerOp, NsPerOp: ns, GBPerS: gbps(bytesPerOp, ns),
	}
	fmt.Printf("%-44s %10.0f ns/op %8.2f GB/s\n", name, ns, r.GBPerS)
	return r
}

// smoothWords32 are quantized bins of a smooth field — the shape the delta
// stage sees in production.
func smoothWords32(n int) []uint32 {
	p, err := core.NewParams(core.ABS, 1e-3, 0, false)
	if err != nil {
		panic(err)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = p.EncodeValue32(float32(math.Sin(float64(i) * 0.01)))
	}
	return out
}

func smoothWords64(n int) []uint64 {
	p, err := core.NewParams(core.ABS, 1e-6, 0, true)
	if err != nil {
		panic(err)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = p.EncodeValue64(math.Sin(float64(i) * 0.01))
	}
	return out
}

// shuffledBytes32 pushes smooth quantized words through delta+shuffle and
// serializes them — the realistic sparse input of the zero-elim stage.
func shuffledBytes32() []byte {
	words := smoothWords32(core.ChunkWords32)
	core.DeltaNegaForward32(words)
	core.BitShuffle32(words)
	data := make([]byte, core.ChunkBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint32(data[i*4:], w)
	}
	return data
}

// denseBytes is incompressible input: every byte nonzero, no repeats.
func denseBytes(n int) []byte {
	state := uint64(0x9E3779B97F4A7C15)
	out := make([]byte, n)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		b := byte(state >> 33)
		if b == 0 {
			b = 1
		}
		out[i] = b
	}
	return out
}

func stageBenchmarks(budget time.Duration) ([]Result, []Speedup) {
	var results []Result
	var speedups []Speedup
	pair := func(name, stage string, precision int, dataset string, bytesPerOp int64, fast, slow func()) {
		f := stageResult(name, stage, "fast", precision, dataset, bytesPerOp, budget, fast)
		r := stageResult(name+"_ref", stage, "ref", precision, dataset, bytesPerOp, budget, slow)
		results = append(results, f, r)
		speedups = append(speedups, Speedup{Name: name, FastOverRef: r.NsPerOp / f.NsPerOp})
	}

	// Stage 1: delta + negabinary.
	w32 := smoothWords32(core.ChunkWords32)
	buf32 := make([]uint32, len(w32))
	pair("delta_nega_forward/32", "delta", 32, "smooth", core.ChunkBytes,
		func() { copy(buf32, w32); core.DeltaNegaForward32(buf32) },
		func() { copy(buf32, w32); ref.DeltaNegaForward32(buf32) })
	resid32 := append([]uint32(nil), w32...)
	core.DeltaNegaForward32(resid32)
	pair("delta_nega_inverse/32", "delta", 32, "smooth", core.ChunkBytes,
		func() { copy(buf32, resid32); core.DeltaNegaInverse32(buf32) },
		func() { copy(buf32, resid32); ref.DeltaNegaInverse32(buf32) })
	w64 := smoothWords64(core.ChunkWords64)
	buf64 := make([]uint64, len(w64))
	pair("delta_nega_forward/64", "delta", 64, "smooth", core.ChunkBytes,
		func() { copy(buf64, w64); core.DeltaNegaForward64(buf64) },
		func() { copy(buf64, w64); ref.DeltaNegaForward64(buf64) })

	// Stage 2: bit shuffle.
	pair("bit_shuffle/32", "shuffle", 32, "smooth", core.ChunkBytes,
		func() { core.BitShuffle32(buf32) },
		func() { ref.BitShuffle32(buf32) })
	pair("bit_shuffle/64", "shuffle", 64, "smooth", core.ChunkBytes,
		func() { core.BitShuffle64(buf64) },
		func() { ref.BitShuffle64(buf64) })

	// Stage 3: zero-byte elimination, on realistic sparse bytes and on the
	// incompressible worst case.
	var s core.ZeroElimScratch
	out := make([]byte, 0, core.MaxChunkPayload)
	for _, ds := range []struct {
		name string
		data []byte
	}{
		{"shuffled-smooth", shuffledBytes32()},
		{"dense", denseBytes(core.ChunkBytes)},
	} {
		data := ds.data
		pair("zero_elim_encode/32/"+ds.name, "zeroelim", 32, ds.name, int64(len(data)),
			func() { out = core.ZeroElimEncodeScratch(data, out[:0], &s) },
			func() { out = ref.ZeroElimEncode(data, out[:0]) })
		enc := core.ZeroElimEncodeScratch(data, nil, &s)
		dst := make([]byte, len(data))
		pair("zero_elim_decode/32/"+ds.name, "zeroelim", 32, ds.name, int64(len(data)),
			func() {
				if _, err := core.ZeroElimDecodeScratch(enc, dst, &s); err != nil {
					panic(err)
				}
			},
			func() {
				if _, err := ref.ZeroElimDecode(enc, dst); err != nil {
					panic(err)
				}
			})
	}
	return results, speedups
}

func executorBenchmarks(budget time.Duration) []Result {
	var results []Result
	const n = 1 << 20 // 4 MiB of float32
	src := make([]float32, n)
	for i := range src {
		x := float64(i) * 1e-4
		src[i] = float32(math.Sin(x) + 0.3*math.Cos(9*x))
	}
	devices := []struct {
		name string
		dev  pfpl.Device
	}{
		{"serial", pfpl.Serial()},
		{"cpu", pfpl.CPU(0)},
		{"gpusim-4090", pfpl.GPU(pfpl.RTX4090)},
	}
	for _, d := range devices {
		dev := d.dev
		bytesPerOp := int64(len(src)) * 4
		ns := measure(budget, func() {
			if _, err := dev.Compress32(src, pfpl.ABS, 1e-3); err != nil {
				panic(err)
			}
		})
		r := Result{
			Name: "compress/32/" + d.name, Kind: "executor", Executor: d.name,
			Op: "compress", Precision: 32, Dataset: "smooth",
			BytesPerOp: bytesPerOp, NsPerOp: ns, GBPerS: gbps(bytesPerOp, ns),
		}
		fmt.Printf("%-44s %10.0f ns/op %8.2f GB/s\n", r.Name, ns, r.GBPerS)
		results = append(results, r)

		comp, err := dev.Compress32(src, pfpl.ABS, 1e-3)
		if err != nil {
			panic(err)
		}
		dst := make([]float32, n)
		ns = measure(budget, func() {
			if _, err := dev.Decompress32(comp, dst); err != nil {
				panic(err)
			}
		})
		r = Result{
			Name: "decompress/32/" + d.name, Kind: "executor", Executor: d.name,
			Op: "decompress", Precision: 32, Dataset: "smooth",
			BytesPerOp: bytesPerOp, NsPerOp: ns, GBPerS: gbps(bytesPerOp, ns),
		}
		fmt.Printf("%-44s %10.0f ns/op %8.2f GB/s\n", r.Name, ns, r.GBPerS)
		results = append(results, r)
	}
	return results
}

func run(budget time.Duration, outPath, batchOutPath string, batchFields int) error {
	stages, speedups := stageBenchmarks(budget)
	executors := executorBenchmarks(budget)
	rep := Report{
		Description: "PFPL core kernel throughput: per-stage fast (word-parallel) vs ref (scalar reference) GB/s, plus end-to-end executor throughput on a 4 MiB smooth float32 field (ABS 1e-3). Regenerate: go run ./cmd/benchcore -out results/BENCH_core.json (see EXPERIMENTS.md).",
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		ChunkBytes:  core.ChunkBytes,
		Budget:      budget.String(),
		Stages:      stages,
		Executors:   executors,
		Speedups:    speedups,
	}
	if err := writeJSON(&rep, outPath); err != nil {
		return err
	}
	if batchOutPath == "" {
		return nil
	}
	brep := batchReport(budget, batchFields, batchFieldValues)
	return writeJSON(&brep, batchOutPath)
}

func writeJSON(v any, outPath string) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

func main() {
	quick := flag.Bool("quick", false, "short measurement budget and small batch scenario (CI smoke pass)")
	out := flag.String("out", "results/BENCH_core.json", "output path, or - for stdout")
	batchOut := flag.String("batch-out", "results/BENCH_batch.json", "batch-scenario output path, - for stdout, empty to skip")
	flag.Parse()
	budget := 300 * time.Millisecond
	batchFields := batchFieldsFull
	if *quick {
		budget = 25 * time.Millisecond
		batchFields = batchFieldsQuick
	}
	if err := run(budget, *out, *batchOut, batchFields); err != nil {
		fmt.Fprintln(os.Stderr, "benchcore:", err)
		os.Exit(1)
	}
}
