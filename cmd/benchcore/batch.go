package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"pfpl"
	"pfpl/internal/core"
)

// Many-small-fields scenario: the DAQ-style workload the batch path exists
// for. The default shape is 4096 fields of 16 KB (one chunk) each — 64 MiB
// of float32 — where per-field dispatch overhead rivals the encoding work
// itself. The batch path runs all fields through one dispatch; the per-field
// path is the same device called once per field. Output bytes are identical
// (each batch field payload is the single-field stream), so the comparison
// is pure scheduling cost.

// BatchResult is one batch-vs-per-field measurement pair for an executor.
type BatchResult struct {
	Executor     string  `json:"executor"`
	Op           string  `json:"op"`
	Fields       int     `json:"fields"`
	FieldBytes   int     `json:"field_bytes"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	PerFieldNs   float64 `json:"per_field_ns_per_op"`
	BatchNs      float64 `json:"batch_ns_per_op"`
	PerFieldGBPS float64 `json:"per_field_gb_per_s"`
	BatchGBPS    float64 `json:"batch_gb_per_s"`
	Speedup      float64 `json:"batch_over_per_field"`
}

// BatchReport is the schema of results/BENCH_batch.json.
type BatchReport struct {
	Description string        `json:"description"`
	Date        string        `json:"date"`
	GoVersion   string        `json:"go_version"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Fields      int           `json:"fields"`
	FieldBytes  int           `json:"field_bytes"`
	Budget      string        `json:"budget_per_measurement"`
	Results     []BatchResult `json:"results"`
}

// makeBatchFields builds numFields smooth fields of fieldValues float32 each,
// phase-shifted so neighboring fields differ.
func makeBatchFields(numFields, fieldValues int) [][]float32 {
	fields := make([][]float32, numFields)
	for f := range fields {
		vals := make([]float32, fieldValues)
		phase := float64(f) * 0.1
		for i := range vals {
			x := float64(i)*1e-3 + phase
			vals[i] = float32(math.Sin(x) + 0.3*math.Cos(9*x))
		}
		fields[f] = vals
	}
	return fields
}

func batchBenchmarks(budget time.Duration, numFields, fieldValues int) []BatchResult {
	fields := makeBatchFields(numFields, fieldValues)
	bytesPerOp := int64(numFields) * int64(fieldValues) * 4
	fieldBytes := fieldValues * 4

	pool := pfpl.NewCPUPool(0)
	defer pool.Close()
	devices := []struct {
		name string
		dev  pfpl.Device
	}{
		{"cpu", pfpl.CPU(0)},
		{"cpu-pool", pool},
		{"gpusim-4090", pfpl.GPU(pfpl.RTX4090)},
	}
	opts := pfpl.Options{Mode: pfpl.ABS, Bound: 1e-3}

	var results []BatchResult
	for _, d := range devices {
		dev := d.dev
		o := opts
		o.Device = dev

		perFieldNs := measure(budget, func() {
			for _, f := range fields {
				if _, err := dev.Compress32(f, pfpl.ABS, 1e-3); err != nil {
					panic(err)
				}
			}
		})
		batchNs := measure(budget, func() {
			if _, err := pfpl.CompressBatch32(fields, o); err != nil {
				panic(err)
			}
		})
		r := BatchResult{
			Executor: d.name, Op: "compress", Fields: numFields, FieldBytes: fieldBytes,
			BytesPerOp: bytesPerOp, PerFieldNs: perFieldNs, BatchNs: batchNs,
			PerFieldGBPS: gbps(bytesPerOp, perFieldNs), BatchGBPS: gbps(bytesPerOp, batchNs),
			Speedup: perFieldNs / batchNs,
		}
		fmt.Printf("batch-compress/%-22s per-field %8.2f GB/s  batch %8.2f GB/s  %5.2fx\n",
			d.name, r.PerFieldGBPS, r.BatchGBPS, r.Speedup)
		results = append(results, r)

		comp, err := pfpl.CompressBatch32(fields, o)
		if err != nil {
			panic(err)
		}
		singles := make([][]byte, numFields)
		ob, err := pfpl.OpenBatch(comp)
		if err != nil {
			panic(err)
		}
		for i := range singles {
			fc, err := ob.Field(i)
			if err != nil {
				panic(err)
			}
			singles[i] = fc
		}
		dst := make([]float32, fieldValues)
		perFieldNs = measure(budget, func() {
			for _, fc := range singles {
				if _, err := dev.Decompress32(fc, dst); err != nil {
					panic(err)
				}
			}
		})
		batchNs = measure(budget, func() {
			if _, err := pfpl.DecompressBatch32(comp, o); err != nil {
				panic(err)
			}
		})
		r = BatchResult{
			Executor: d.name, Op: "decompress", Fields: numFields, FieldBytes: fieldBytes,
			BytesPerOp: bytesPerOp, PerFieldNs: perFieldNs, BatchNs: batchNs,
			PerFieldGBPS: gbps(bytesPerOp, perFieldNs), BatchGBPS: gbps(bytesPerOp, batchNs),
			Speedup: perFieldNs / batchNs,
		}
		fmt.Printf("batch-decompress/%-20s per-field %8.2f GB/s  batch %8.2f GB/s  %5.2fx\n",
			d.name, r.PerFieldGBPS, r.BatchGBPS, r.Speedup)
		results = append(results, r)
	}
	return results
}

func batchReport(budget time.Duration, numFields, fieldValues int) BatchReport {
	return BatchReport{
		Description: fmt.Sprintf("PFPL batch path on the many-small-fields (DAQ) shape: %d fields x %d KB float32 (ABS 1e-3), batch (one dispatch over all fields' chunks) vs per-field (one dispatch per field) on the same executor. Regenerate: go run ./cmd/benchcore -batch-out results/BENCH_batch.json (see EXPERIMENTS.md).", numFields, fieldValues*4/1024),
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Fields:      numFields,
		FieldBytes:  fieldValues * 4,
		Budget:      budget.String(),
		Results:     batchBenchmarks(budget, numFields, fieldValues),
	}
}

// batchFieldValues is the per-field element count of the scenario: one
// 16 KB chunk per field.
const batchFieldValues = core.ChunkWords32

// Field counts for the committed run and the CI quick pass.
const (
	batchFieldsFull  = 4096
	batchFieldsQuick = 256
)
