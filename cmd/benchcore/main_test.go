package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunEmitsValidReport runs the whole harness at a tiny budget and
// checks the JSON schema: every stage has a fast and a ref entry, every
// measurement reports positive throughput, and the zero-elim speedups are
// present (the acceptance numbers the optimized kernels are pinned to).
func TestRunEmitsValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement pass skipped in short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	batchOut := filepath.Join(t.TempDir(), "bench_batch.json")
	if err := run(2*time.Millisecond, out, batchOut, 4); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Stages) == 0 || len(rep.Executors) == 0 || len(rep.Speedups) == 0 {
		t.Fatalf("empty report sections: %d stages, %d executors, %d speedups",
			len(rep.Stages), len(rep.Executors), len(rep.Speedups))
	}
	impls := map[string]map[string]bool{}
	for _, r := range rep.Stages {
		if !(r.GBPerS > 0) || !(r.NsPerOp > 0) || r.BytesPerOp <= 0 {
			t.Errorf("%s: non-positive measurement %+v", r.Name, r)
		}
		if impls[r.Stage] == nil {
			impls[r.Stage] = map[string]bool{}
		}
		impls[r.Stage][r.Impl] = true
	}
	for _, stage := range []string{"delta", "shuffle", "zeroelim"} {
		if !impls[stage]["fast"] || !impls[stage]["ref"] {
			t.Errorf("stage %q missing fast or ref entries: %v", stage, impls[stage])
		}
	}
	sawZeroElim := false
	for _, s := range rep.Speedups {
		if s.FastOverRef <= 0 {
			t.Errorf("speedup %s is non-positive: %g", s.Name, s.FastOverRef)
		}
		if s.Name == "zero_elim_encode/32/shuffled-smooth" {
			sawZeroElim = true
		}
	}
	if !sawZeroElim {
		t.Error("zero-elim encode speedup entry missing")
	}
	for _, r := range rep.Executors {
		if !(r.GBPerS > 0) {
			t.Errorf("%s: non-positive throughput", r.Name)
		}
	}

	// Batch report schema: every executor reports both ops with positive
	// throughput on both sides of the batch-vs-per-field comparison.
	bbuf, err := os.ReadFile(batchOut)
	if err != nil {
		t.Fatal(err)
	}
	var brep BatchReport
	if err := json.Unmarshal(bbuf, &brep); err != nil {
		t.Fatalf("invalid batch JSON: %v", err)
	}
	if len(brep.Results) == 0 {
		t.Fatal("empty batch report")
	}
	ops := map[string]int{}
	for _, r := range brep.Results {
		if !(r.PerFieldGBPS > 0) || !(r.BatchGBPS > 0) || !(r.Speedup > 0) {
			t.Errorf("batch %s/%s: non-positive measurement %+v", r.Executor, r.Op, r)
		}
		ops[r.Op]++
	}
	if ops["compress"] == 0 || ops["decompress"] == 0 {
		t.Errorf("batch report missing an op side: %v", ops)
	}
}
