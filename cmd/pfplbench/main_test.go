package main

import (
	"os"
	"path/filepath"
	"testing"

	"pfpl/internal/eval"
	"pfpl/internal/sdrbench"
)

func quick() eval.Config {
	return eval.Config{Scale: sdrbench.ScaleSmall, Reps: 1, MaxFilesPerSuite: 1}
}

func TestRunExperimentDispatch(t *testing.T) {
	cfg := quick()
	for _, id := range []string{"table1", "table2", "gpugen", "lcsearch"} {
		reps, err := runExperiment(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(reps) == 0 {
			t.Fatalf("%s: no reports", id)
		}
	}
	if _, err := runExperiment("nope", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentFigureAliases(t *testing.T) {
	cfg := quick()
	// fig9 aliases fig8's pair, fig11 fig10's, etc.
	a, err := runExperiment("fig8", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runExperiment("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Error("fig8 and fig9 should produce the same report set")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	r := &eval.Report{ID: "Fig 6a", CSV: [][]string{{"a", "b"}, {"1", "2"}}}
	if err := writeCSV(dir, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig_6a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("csv content %q", data)
	}
	// Empty CSV writes nothing.
	if err := writeCSV(dir, &eval.Report{ID: "empty"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "empty.csv")); !os.IsNotExist(err) {
		t.Error("empty report created a file")
	}
}
