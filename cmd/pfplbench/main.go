// Command pfplbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pfplbench -exp all                 # everything (slow at larger scales)
//	pfplbench -exp fig6 -scale medium  # one experiment
//	pfplbench -exp table3 -csv results # also write CSV files
//
// Experiments: table1, table2, table3, fig6, fig7, fig8, fig10, fig12,
// fig14, fig16, gpugen, ablation, lcsearch, takeaways, all. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured discussion.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pfpl/internal/eval"
	"pfpl/internal/sdrbench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (table1..3, fig6..16, gpugen, ablation, all)")
		scale  = flag.String("scale", "small", "dataset scale: small, medium, large")
		reps   = flag.Int("reps", 3, "timing repetitions (median reported; paper uses 9)")
		csvDir = flag.String("csv", "", "directory to write CSV files into (optional)")
	)
	flag.Parse()

	cfg := eval.DefaultConfig()
	cfg.Reps = *reps
	switch strings.ToLower(*scale) {
	case "small":
		cfg.Scale = sdrbench.ScaleSmall
	case "medium":
		cfg.Scale = sdrbench.ScaleMedium
	case "large":
		cfg.Scale = sdrbench.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	reports, err := runExperiment(strings.ToLower(*exp), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pfplbench:", err)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Println(r.Text())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fmt.Fprintln(os.Stderr, "pfplbench:", err)
				os.Exit(1)
			}
		}
	}
}

func runExperiment(id string, cfg eval.Config) ([]*eval.Report, error) {
	switch id {
	case "table1":
		return []*eval.Report{eval.Table1()}, nil
	case "table2":
		return []*eval.Report{eval.Table2(cfg.Scale)}, nil
	case "table3":
		return []*eval.Report{eval.Table3(cfg)}, nil
	case "fig6":
		return eval.Fig6(cfg), nil
	case "fig7":
		return eval.Fig7(cfg), nil
	case "fig8", "fig9":
		return eval.Fig8(cfg), nil
	case "fig10", "fig11":
		return eval.Fig10(cfg), nil
	case "fig12", "fig13":
		return eval.Fig12(cfg), nil
	case "fig14", "fig15":
		return eval.Fig14(cfg), nil
	case "fig16":
		return eval.Fig16(cfg), nil
	case "gpugen":
		return []*eval.Report{eval.GPUGenerations(cfg)}, nil
	case "ablation":
		return []*eval.Report{eval.Ablation(cfg)}, nil
	case "lcsearch":
		return []*eval.Report{eval.LCSearch(cfg)}, nil
	case "takeaways":
		return []*eval.Report{eval.Takeaways(cfg)}, nil
	case "all":
		var out []*eval.Report
		out = append(out, eval.Table1(), eval.Table2(cfg.Scale), eval.Table3(cfg))
		out = append(out, eval.Fig6(cfg)...)
		out = append(out, eval.Fig7(cfg)...)
		out = append(out, eval.Fig8(cfg)...)
		out = append(out, eval.Fig10(cfg)...)
		out = append(out, eval.Fig12(cfg)...)
		out = append(out, eval.Fig14(cfg)...)
		out = append(out, eval.Fig16(cfg)...)
		out = append(out, eval.GPUGenerations(cfg), eval.Ablation(cfg), eval.LCSearch(cfg), eval.Takeaways(cfg))
		return out, nil
	}
	return nil, fmt.Errorf("unknown experiment %q", id)
}

func writeCSV(dir string, r *eval.Report) error {
	if len(r.CSV) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(r.ID, " ", "_"), "/", "-")) + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(r.CSV); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}
