// Command sdrgen materializes the synthetic SDRBench-equivalent datasets as
// raw little-endian binary files (.f32 / .f64), one directory per suite, so
// they can be fed to external tools or to the pfpl CLI.
//
// Usage:
//
//	sdrgen -out ./data -scale small
//	sdrgen -out ./data -suite NYX
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"pfpl/internal/sdrbench"
)

func main() {
	var (
		out   = flag.String("out", "sdrbench-data", "output directory")
		scale = flag.String("scale", "small", "dataset scale: small, medium, large")
		suite = flag.String("suite", "", "generate only this suite (default: all)")
	)
	flag.Parse()

	var sc sdrbench.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = sdrbench.ScaleSmall
	case "medium":
		sc = sdrbench.ScaleMedium
	case "large":
		sc = sdrbench.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if err := run(*out, sc, *suite); err != nil {
		fmt.Fprintln(os.Stderr, "sdrgen:", err)
		os.Exit(1)
	}
}

func run(outDir string, sc sdrbench.Scale, only string) error {
	total := 0
	for _, s := range sdrbench.Suites(sc) {
		if only != "" && !strings.EqualFold(s.Name, only) {
			continue
		}
		dir := filepath.Join(outDir, sanitize(s.Name))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, f := range s.Files {
			ext := ".f32"
			if s.Double {
				ext = ".f64"
			}
			path := filepath.Join(dir, f.Name+ext)
			var buf []byte
			if s.Double {
				vals := f.Data64()
				buf = make([]byte, 8*len(vals))
				for i, v := range vals {
					binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
				}
			} else {
				vals := f.Data32()
				buf = make([]byte, 4*len(vals))
				for i, v := range vals {
					binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
				}
			}
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				return err
			}
			fmt.Printf("%s  %d bytes  dims=%v\n", path, len(buf), f.Dims)
			total += len(buf)
			f.Release()
		}
	}
	fmt.Printf("total: %.1f MB\n", float64(total)/1e6)
	return nil
}

func sanitize(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "_")
}
