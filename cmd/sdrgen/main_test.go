package main

import (
	"os"
	"path/filepath"
	"testing"

	"pfpl/internal/sdrbench"
)

func TestRunWritesSuite(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, sdrbench.ScaleSmall, "QMCPACK"); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "qmcpack", "*.f32"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no generated files: %v", err)
	}
	st, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()%4 != 0 || st.Size() == 0 {
		t.Errorf("file size %d not a float32 array", st.Size())
	}
}

func TestRunDoubleSuite(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, sdrbench.ScaleSmall, "Brown Samples"); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "brown_samples", "*.f64"))
	if len(files) != 3 {
		t.Fatalf("got %d .f64 files, want 3", len(files))
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("Hurricane Isabel"); got != "hurricane_isabel" {
		t.Errorf("sanitize: %q", got)
	}
}
