package pfpl

import (
	"bytes"
	"testing"
)

func TestChecksumRoundtrip(t *testing.T) {
	src := synth32(50000, 70)
	comp, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Stat(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Checksummed {
		t.Fatal("stream not marked checksummed")
	}
	dec, err := Decompress32(comp, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyBound(src, dec, ABS, 1e-3); v != 0 {
		t.Fatalf("%d violations", v)
	}
	// Range access also verifies the trailer.
	if _, err := DecompressRange32(comp, 100, 50); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	src := synth32(30000, 71)
	comp, err := Compress32(src, Options{Mode: REL, Bound: 1e-2, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit anywhere in the stream body: decode must fail.
	for _, pos := range []int{50, len(comp) / 2, len(comp) - 10} {
		mut := append([]byte(nil), comp...)
		mut[pos] ^= 0x40
		if _, err := Decompress32(mut, nil, Options{}); err == nil {
			t.Errorf("corruption at %d not detected", pos)
		}
	}
	// Truncation (losing the trailer) is also caught.
	if _, err := Decompress32(comp[:len(comp)-2], nil, Options{}); err == nil {
		t.Error("truncation not detected")
	}
}

func TestChecksumIdenticalAcrossDevices(t *testing.T) {
	src := synth32(40000, 72)
	var ref []byte
	for _, d := range []Device{Serial(), CPU(0), GPU(RTX4090)} {
		comp, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3, Checksum: true, Device: d})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = comp
		} else if !bytes.Equal(ref, comp) {
			t.Fatalf("%s checksummed stream differs", d.Name())
		}
	}
}

func TestChecksumOptionalCompatibility(t *testing.T) {
	// Unchecksummed streams still decode with a checksum-aware reader.
	src := synth32(1000, 73)
	comp, err := Compress32(src, Options{Mode: ABS, Bound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := Stat(comp)
	if info.Checksummed {
		t.Error("plain stream marked checksummed")
	}
	if _, err := Decompress32(comp, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// Checksummed f64 path.
	src64 := synth64(1000, 74)
	c64, err := Compress64(src64, Options{Mode: NOA, Bound: 1e-3, Checksum: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress64(c64, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), c64...)
	mut[60] ^= 1
	if _, err := Decompress64(mut, nil, Options{}); err == nil {
		t.Error("f64 corruption not detected")
	}
}
